"""Fast simulation kernels: specialized paths bit-identical to the engine.

The paper's value is the *scale* of its trace-driven campaign, so the hot
paths matter.  This module holds the replay kernels that exploit structure
instead of brute-force per-reference dispatch:

* :func:`lru_demand_replay` — replay for demand-fetch caches without write
  combining.  LRU members on a cold start take a fully vectorized path:
  per-set stack distances classify every reference as hit or miss in whole-
  array passes (a reference hits a W-way set iff its distance within the
  set is at most W), and eviction/push/final-state accounting is recovered
  from *residency intervals* — the spans between consecutive misses of a
  line — with segmented prefix sums.  The distance machinery and sort
  orders are memoized on the compiled trace view, so sweeping one trace
  across many cache sizes pays the O(n log² n) analysis once and each
  subsequent configuration costs a few O(n) array passes.  FIFO and RANDOM
  members use specialized dict loops (DEW's observation that FIFO needs no
  reorder on hit makes the FIFO loop branch-free on the hit path); LRU
  members that start warm, or write-through-no-allocate members, use the
  original tight dict loop.  :func:`repro.core.simulator.simulate` selects
  the kernel automatically when :func:`can_replay` approves the
  organization.

* :func:`all_associativity_hit_counts` — per-set LRU stack distances over
  a set-partitioned line stream: at a fixed set count, one pass yields the
  hit count for *every* associativity at once, the same inclusion-property
  trick :mod:`repro.core.stackdist` uses for capacity (Mattson et al.
  1970), applied per set.  :func:`associativity_miss_surface` builds a
  whole (ways x capacities) miss-ratio grid from one pass per distinct set
  count, which is what collapses the associativity study's simulation
  grid.

All kernels are exact: equivalence tests replay randomized traces
(straddling accesses, purges, warmup) through the kernels and the
reference :class:`~repro.core.cache.Cache` engine and require identical
statistics, identical residency, and — for RANDOM — an identical stream of
random victim draws.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..trace.record import AccessKind
from ..trace.stream import Trace
from .cache import FLAG_DATA, FLAG_DIRTY, FLAG_REFERENCED, Cache
from .fetch import FetchPolicy
from .organization import CacheOrganization
from .replacement import FIFO, LRU, RandomReplacement
from .stackdist import (
    COLD_DISTANCE,
    _stable_order,
    _stack_distances_ordered,
    set_stack_distances,
)

__all__ = [
    "can_replay",
    "lru_demand_replay",
    "all_associativity_hit_counts",
    "associativity_miss_surface",
]

_WRITE = int(AccessKind.WRITE)

# Event tags; a purge at the same trace position as the warmup reset runs
# first, matching the engine's order (purge inside the warmup loop, reset
# after it).
_PURGE = 0
_RESET = 1


# -- kernel selection --------------------------------------------------------


def _policy_kind(cache: Cache) -> str | None:
    """``"lru"``/``"fifo"``/``"random"`` when every set runs that exact
    policy class, else None.

    Detection probes the per-set policy instances rather than the factory:
    the random factory is a closure (each set gets an independent seed
    stream), so no factory identity check can recognize it.
    """
    policies = cache._policies
    head = type(policies[0])
    if head not in (LRU, FIFO, RandomReplacement):
        return None
    for policy in policies:
        if type(policy) is not head:
            return None
    return head.name


def _cache_qualifies(cache: Cache) -> bool:
    """True iff one cache array is expressible by the replay kernel."""
    return (
        type(cache) is Cache
        and cache.fetch_policy is FetchPolicy.DEMAND
        and cache.write_policy.combining_bytes == 0
        and cache.miss_path is None  # mechanisms need the generic engine
        and _policy_kind(cache) is not None
    )


def can_replay(organization: CacheOrganization) -> bool:
    """True iff :func:`lru_demand_replay` reproduces the generic engine
    exactly for ``organization``.

    Requirements: the organization exposes a replay plan (unified or
    split), and every member cache is a plain :class:`Cache` with LRU,
    FIFO or random replacement, demand fetching, and either copy-back or
    write-through without a combining buffer.  Anything else (prefetching,
    LFU, write combining, sector caches) takes the generic engine.
    """
    plan = organization.replay_plan()
    if plan is None:
        return False
    members, _routing = plan
    return all(_cache_qualifies(cache) for cache in members)


# -- the specialized demand-fetch replay kernel ------------------------------


def lru_demand_replay(
    trace: Trace,
    organization: CacheOrganization,
    purge_interval: int | None = None,
    limit: int | None = None,
    warmup: int = 0,
) -> int:
    """Replay ``trace`` through ``organization`` on the fast path.

    Mutates the organization exactly as the generic engine would — same
    counters, same resident lines and flags, same recency order, same
    random-policy generator state — but orders of magnitude faster.
    Callers must have checked :func:`can_replay`; argument validation is
    the caller's (``simulate``'s) job.

    Kernel-selection matrix (per member cache):

    ========  ===========================  =================================
    policy    starting state               path
    ========  ===========================  =================================
    LRU       cold, allocate-on-write      vectorized stack-distance replay
    LRU       warm start or no-allocate    tight dict loop
    FIFO      any                          dict loop, no reorder on hit
    RANDOM    any                          dict loop, cache's own per-set rngs
    ========  ===========================  =================================

    Returns:
        The number of measured (post-warmup) trace references.
    """
    members, routing = organization.replay_plan()
    line_size = members[0].geometry.line_size
    length = len(trace) if limit is None else min(limit, len(trace))
    warmup = min(warmup, length)

    compiled = trace.compiled(line_size)
    cut = compiled.cut(length)
    whole = cut == len(compiled)
    kinds = compiled.kinds if whole else compiled.kinds[:cut]
    lines = compiled.lines if whole else compiled.lines[:cut]
    positions = compiled.positions if whole else compiled.positions[:cut]

    purge_positions: range = (
        range(purge_interval, length + 1, purge_interval)
        if purge_interval is not None
        else range(0)
    )

    single = len(members) == 1
    member_of = None
    if not single:
        member_of = np.asarray(routing, dtype=np.int8)[kinds]

    for index, cache in enumerate(members):
        policy = _policy_kind(cache)
        if (
            policy == "lru"
            and cache.write_policy.allocate_on_write
            and not any(cache._sets)
        ):
            bundle = compiled.memo(
                (
                    "replay",
                    cut,
                    None if single else (routing, index),
                    cache.geometry.num_sets,
                    purge_interval,
                    cache.write_policy.is_copy_back,
                ),
                lambda: _build_replay_bundle(
                    kinds,
                    lines,
                    positions,
                    None if single else member_of == index,
                    cache.geometry.num_sets,
                    purge_positions,
                    cache.write_policy.is_copy_back,
                ),
            )
            if warmup == 0 and cache.geometry.ways < _CLIP:
                _replay_member_presorted(cache, bundle)
            else:
                _replay_member_vectorized(cache, bundle, warmup)
            continue
        if single:
            mkinds, mlines, mpositions = kinds, lines, positions
        else:
            mask = member_of == index
            mkinds = kinds[mask]
            mlines = lines[mask]
            mpositions = positions[mask]
        # Purges and the warmup reset happen between *trace* references;
        # map them onto this member's line-reference stream.
        events = [
            (int(np.searchsorted(mpositions, p, side="left")), p, _PURGE)
            for p in purge_positions
        ]
        if warmup:
            events.append(
                (int(np.searchsorted(mpositions, warmup, side="left")), warmup, _RESET)
            )
        events.sort()
        if single and whole:
            kind_list, line_list = compiled.as_lists()
        else:
            kind_list, line_list = mkinds.tolist(), mlines.tolist()
        if policy == "lru":
            _replay_member(cache, kind_list, line_list, events)
        else:
            rngs = (
                [p._rng for p in cache._policies] if policy == "random" else None
            )
            _replay_member_queue(cache, kind_list, line_list, events, rngs)

    # Write-through accounting is per trace reference and independent of
    # cache state (no combining on the fast path), so it vectorizes over
    # the measured region.
    write_cache = members[routing[_WRITE]]
    if not write_cache.write_policy.is_copy_back and length > warmup:
        write_mask = trace.kinds[warmup:length] == _WRITE
        count = int(np.count_nonzero(write_mask))
        if count:
            stats = write_cache.stats
            stats.write_throughs += count
            stats.write_through_bytes += int(trace.sizes[warmup:length][write_mask].sum())
    return length - warmup


# -- the vectorized LRU replay path ------------------------------------------


#: Stack distances are clipped to this before being packed next to chain
#: ids in one int64 (the segmented-cummax trick).  Any real associativity
#: is far below it, so the clip never changes a hit/miss comparison; a
#: (absurd) wider cache falls back to the unclipped O(n) path.
_CLIP = np.int64(1) << 32
_PACK_SHIFT = 33


class _ReplayBundle:
    """Configuration-independent analysis of one member's line stream.

    Everything here depends only on the stream, the set count and the purge
    schedule — *not* on associativity or warmup — so one bundle serves a
    whole capacity/ways sweep.  Layout: arrays are in "set order" (stable
    sort by set index; within a set, original time order), the layout in
    which each set's references are contiguous and per-set stack structure
    becomes segmented prefix sums.

    The ``sorted_*``/``chain_*`` members are the threshold tables of the
    measured-from-the-start (no warmup) fast path: every counter the
    engine produces is a monotone function of the associativity ``W``
    (references with stack distance > W, residencies whose first data
    reference follows a distance-> W gap, chains with fewer than W
    later-finishing neighbours, ...), so one ``np.sort`` at build time
    turns each per-call tally into a binary search.
    """

    __slots__ = (
        "kinds",          # int8, set order
        "lines",          # int64, set order
        "positions",      # int64 trace positions, set order
        "distances",      # per-set, per-epoch LRU stack distances
        "first_touch",    # exclusive count of distinct lines seen earlier
                          # in the reference's (set, epoch) segment
        "epochs",         # purge-epoch number per reference (None: no purges)
        "line_order",     # stable order by line over the set-order layout
        "last_in_epoch",  # in line_order space: last touch of (line, epoch)?
        "suffix_last",    # markers strictly after, within the segment
        "flag_or",        # per-reference flag bitmask, in line_order space
        "kind_counts",    # histogram of kinds (warmup-free refs counters)
        "purge_positions",  # int64 purge trace-positions
        # threshold tables (clipped distances, sorted ascending)
        "sorted_by_kind",     # 4 arrays: distances of each access kind
        "sorted_reuse",       # distances of the non-cold references
        "sorted_cold_crowd",  # first_touch of the cold references
        "sorted_res_data",    # per data ref: max distance since prev data ref
        "sorted_res_dirty",   # per write ref: ditto for writes (copy-back)
        "chains",             # per-(line, epoch) chain survival table
    )

    def __init__(self, **fields) -> None:
        for name, value in fields.items():
            setattr(self, name, value)


def _build_replay_bundle(
    kinds: np.ndarray,
    lines: np.ndarray,
    positions: np.ndarray,
    member_mask: np.ndarray | None,
    num_sets: int,
    purge_positions: range,
    copy_back: bool,
) -> _ReplayBundle:
    if member_mask is not None:
        kinds = kinds[member_mask]
        lines = lines[member_mask]
        positions = positions[member_mask]
    n = len(lines)
    pp = np.asarray(purge_positions, dtype=np.int64)

    if num_sets > 1:
        set_index = lines & (num_sets - 1)
        order = _stable_order(set_index)
        kinds = kinds[order]
        lines = lines[order]
        positions = positions[order]
        set_index = set_index[order]
    else:
        set_index = None

    epochs = np.searchsorted(pp, positions, side="right") if len(pp) else None

    # The stream is already set-ordered, so the ordered distance core
    # applies directly (set_stack_distances would redo the partition).
    distances = _stack_distances_ordered(lines, epochs)
    cold = distances == COLD_DISTANCE

    # Segment = one (set, epoch) run in the set-order layout.
    segment_change = np.empty(n, dtype=bool)
    if n:
        segment_change[0] = True
        if set_index is not None:
            np.not_equal(set_index[1:], set_index[:-1], out=segment_change[1:])
        else:
            segment_change[1:] = False
        if epochs is not None:
            segment_change[1:] |= epochs[1:] != epochs[:-1]
    segment_start = np.flatnonzero(segment_change)
    segment_id = np.cumsum(segment_change) - 1

    # Distinct lines seen strictly earlier in the segment: cold references
    # are exactly the first touches, so a segmented exclusive prefix sum of
    # the cold markers counts them.
    touches = cold.astype(np.int64)
    running = np.cumsum(touches)
    exclusive = running - touches
    first_touch = exclusive - (exclusive[segment_start][segment_id] if n else exclusive)

    # Line-grouped view: stable order by line; within a line group the
    # layout order is time order, so residency intervals are contiguous.
    line_order = _stable_order(lines)
    grouped_lines = lines[line_order]
    last_in_epoch = np.empty(n, dtype=bool)
    if n:
        last_in_epoch[-1] = True
        np.not_equal(grouped_lines[1:], grouped_lines[:-1], out=last_in_epoch[:-1])
        if epochs is not None:
            grouped_epochs = epochs[line_order]
            last_in_epoch[:-1] |= grouped_epochs[1:] != grouped_epochs[:-1]

    # For each reference, the number of (line, epoch) last-touches strictly
    # after it in its segment — the count of distinct lines whose final
    # reference comes later, which decides end-of-epoch survival.
    markers = np.empty(n, dtype=bool)
    markers[line_order] = last_in_epoch
    marker_running = np.cumsum(markers)
    if n:
        segment_end = np.append(segment_start[1:], n) - 1
        suffix_last = marker_running[segment_end][segment_id] - marker_running
    else:
        suffix_last = marker_running

    flag_table = np.array(
        [
            FLAG_REFERENCED,
            FLAG_REFERENCED | FLAG_DATA,
            FLAG_REFERENCED | FLAG_DATA | (FLAG_DIRTY if copy_back else 0),
            FLAG_REFERENCED,
        ],
        dtype=np.int64,
    )
    flag_or = flag_table[kinds][line_order]

    # -- threshold tables for the no-warmup fast path ------------------------

    clipped = np.minimum(distances, _CLIP)
    sorted_by_kind = tuple(
        np.sort(clipped[kinds == kind]) for kind in range(4)
    )
    sorted_reuse = np.sort(clipped[~cold])
    sorted_cold_crowd = np.sort(first_touch[cold])

    # Chains: one row per (line, epoch) group in line_order space.  A chain
    # splits into residencies at its misses; only the *last* residency can
    # outlive the epoch.
    grouped_distances = clipped[line_order]
    grouped_kinds = kinds[line_order]
    chain_start = np.empty(n, dtype=bool)
    if n:
        chain_start[0] = True
        chain_start[1:] = last_in_epoch[:-1]
    chain_id = np.cumsum(chain_start) - 1
    chain_starts = np.flatnonzero(chain_start)
    chain_ends = np.flatnonzero(last_in_epoch)
    num_chains = len(chain_starts)

    # Inclusive suffix max of distances within each chain, via one reverse
    # cummax over (chain, distance) packed into int64.
    if n:
        packed = ((np.int64(num_chains) - chain_id[::-1]) << _PACK_SHIFT) | (
            grouped_distances[::-1]
        )
        suffix_max = (
            np.maximum.accumulate(packed) & ((np.int64(1) << _PACK_SHIFT) - 1)
        )[::-1]
    else:
        suffix_max = grouped_distances

    def residency_thresholds(flagged: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(per_ref, per_chain)`` thresholds for one flag class.

        per_ref[j] (for each flagged reference j) is the largest distance
        between j and the previous flagged reference of its chain — j opens
        a new flag-carrying residency iff that gap contains a miss, i.e.
        iff the threshold exceeds W.  per_chain[c] is the distance max
        *after* the chain's last flagged reference — the chain's surviving
        residency carries the flag iff that is at most W (BIG if the chain
        has no flagged reference at all).
        """
        if not n:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # Running max that resets after each flagged reference: sub-chains
        # delimited by chain starts and positions following flagged refs.
        sub_start = chain_start.copy()
        sub_start[1:] |= flagged[:-1]
        sub_id = np.cumsum(sub_start) - 1
        packed = (sub_id << _PACK_SHIFT) | grouped_distances
        running = np.maximum.accumulate(packed) & ((np.int64(1) << _PACK_SHIFT) - 1)
        per_ref = np.sort(running[flagged])
        # Last flagged reference per chain (index max; -1 when absent).
        index = np.arange(n, dtype=np.int64)
        last_flagged = np.maximum.reduceat(
            np.where(flagged, index, np.int64(-1)), chain_starts
        )
        per_chain = np.full(num_chains, _CLIP, dtype=np.int64)
        present = last_flagged >= 0
        interior = present & (last_flagged < chain_ends)
        per_chain[present] = 0  # flagged ref is the chain's last reference
        per_chain[interior] = suffix_max[
            np.minimum(last_flagged[interior] + 1, n - 1)
        ]
        return per_ref, per_chain

    is_data = (grouped_kinds == 1) | (grouped_kinds == 2)
    sorted_res_data, chain_data = residency_thresholds(is_data)
    if copy_back:
        sorted_res_dirty, chain_dirty = residency_thresholds(grouped_kinds == 2)
    else:
        sorted_res_dirty = np.empty(0, dtype=np.int64)
        chain_dirty = np.full(num_chains, _CLIP, dtype=np.int64)

    # Survival threshold: a chain's last residency is resident at epoch end
    # iff fewer than W other lines finish after it — survive_at <= W.
    end_positions = line_order[chain_ends]
    survive_at = suffix_last[end_positions] + 1
    chain_epoch = (
        epochs[end_positions] if epochs is not None else np.zeros(num_chains, np.int64)
    )
    chain_lines = lines[end_positions]
    with_data = np.maximum(survive_at, chain_data)
    with_dirty = np.maximum(survive_at, chain_dirty)

    total_purges = len(pp)
    purged_mask = chain_epoch < total_purges
    final_mask = chain_epoch == total_purges
    final_order = np.flatnonzero(final_mask)[np.argsort(survive_at[final_mask])]
    chains = {
        "survive_data": np.sort(with_data),
        "survive_dirty": np.sort(with_dirty),
        "purged_at": np.sort(survive_at[purged_mask]),
        "purged_data": np.sort(with_data[purged_mask]),
        "purged_dirty": np.sort(with_dirty[purged_mask]),
        # Final-epoch chains sorted by survival threshold, so the set of
        # survivors at any W is a prefix.
        "final_at": survive_at[final_order],
        "final_lines": chain_lines[final_order],
        "final_end": end_positions[final_order],
        "final_data": chain_data[final_order],
        "final_dirty": chain_dirty[final_order],
    }

    return _ReplayBundle(
        kinds=kinds,
        lines=lines,
        positions=positions,
        distances=distances,
        first_touch=first_touch,
        epochs=epochs,
        line_order=line_order,
        last_in_epoch=last_in_epoch,
        suffix_last=suffix_last,
        flag_or=flag_or,
        kind_counts=np.bincount(kinds, minlength=4),
        purge_positions=pp,
        sorted_by_kind=sorted_by_kind,
        sorted_reuse=sorted_reuse,
        sorted_cold_crowd=sorted_cold_crowd,
        sorted_res_data=sorted_res_data,
        sorted_res_dirty=sorted_res_dirty,
        chains=chains,
    )


def _push_tally(flags: np.ndarray) -> tuple[int, int, int]:
    """``(data, dirty_data, dirty)`` push counts for pushed-line flags."""
    data_mask = flags & FLAG_DATA != 0
    dirty_mask = flags & FLAG_DIRTY != 0
    return (
        int(np.count_nonzero(data_mask)),
        int(np.count_nonzero(data_mask & dirty_mask)),
        int(np.count_nonzero(dirty_mask)),
    )


def _replay_member_presorted(cache: Cache, bundle: _ReplayBundle) -> None:
    """Measured-from-the-start replay: every counter via binary search.

    With no warmup reset, each statistic is a monotone tally against the
    associativity ``W``, answered from the bundle's sorted threshold
    tables:

    * misses per kind — references with stack distance > W;
    * evictions — reused references at distance > W (a reused line's set is
      necessarily full when it misses) plus cold references arriving at a
      set already holding >= W lines;
    * pushed-line flag counts — a residency carries DATA iff some data
      reference opens it, counted by the first data reference after each
      distance-> W gap, minus the flag-carrying residencies that survive
      their epoch (threshold ``max(survive_at, chain_data)``); DIRTY comes
      from write references the same way, and under the kernel's flag
      model DIRTY implies DATA, so dirty-data pushes equal dirty pushes;
    * purge pushes — end-of-epoch survivors of purged epochs.

    Only the final residency write-back (at most W lines per set) leaves
    O(log n) territory.
    """
    ways = cache.geometry.ways
    search = np.searchsorted

    refs = bundle.kind_counts
    miss_by_kind = [
        int(len(table) - search(table, ways, side="right"))
        for table in bundle.sorted_by_kind
    ]
    demand = sum(miss_by_kind)

    reuse = bundle.sorted_reuse
    crowd = bundle.sorted_cold_crowd
    rpush = int(len(reuse) - search(reuse, ways, side="right")) + int(
        len(crowd) - search(crowd, ways, side="left")
    )

    chains = bundle.chains
    res_data = bundle.sorted_res_data
    res_dirty = bundle.sorted_res_dirty
    total_data = int(len(res_data) - search(res_data, ways, side="right"))
    total_dirty = int(len(res_dirty) - search(res_dirty, ways, side="right"))
    survive_data = int(search(chains["survive_data"], ways, side="right"))
    survive_dirty = int(search(chains["survive_dirty"], ways, side="right"))
    ppush = int(search(chains["purged_at"], ways, side="right"))
    purged_data = int(search(chains["purged_data"], ways, side="right"))
    purged_dirty = int(search(chains["purged_dirty"], ways, side="right"))
    data = total_data - survive_data + purged_data
    dirty = total_dirty - survive_dirty + purged_dirty

    stats = cache.stats
    for kind, counts in enumerate(stats.counts_by_kind()):
        counts.references += int(refs[kind])
        counts.misses += miss_by_kind[kind]
    stats.demand_fetches += demand
    stats.replacement_pushes += rpush
    stats.purge_pushes += ppush
    stats.dirty_pushes += dirty
    stats.data_pushes += data
    stats.dirty_data_pushes += dirty  # DIRTY implies DATA on a cold start
    stats.purges += len(bundle.purge_positions)
    if len(bundle.purge_positions):
        cache._last_write_word = -1

    survivors = int(search(chains["final_at"], ways, side="right"))
    if survivors:
        sets = cache._sets
        set_mask = cache.geometry.num_sets - 1
        order = np.argsort(chains["final_end"][:survivors])
        final_lines = chains["final_lines"][:survivors][order].tolist()
        has_data = (chains["final_data"][:survivors][order] <= ways).tolist()
        has_dirty = (chains["final_dirty"][:survivors][order] <= ways).tolist()
        base = FLAG_REFERENCED
        for line, d_flag, w_flag in zip(final_lines, has_data, has_dirty):
            sets[line & set_mask][line] = (
                base | (FLAG_DATA if d_flag else 0) | (FLAG_DIRTY if w_flag else 0)
            )


def _replay_member_vectorized(cache: Cache, bundle: _ReplayBundle, warmup: int) -> None:
    """Apply one member's whole stream to a cold LRU cache in array passes.

    Hits/misses come straight from the precomputed stack distances
    (``distance <= ways`` hits).  Evictions are the misses arriving with a
    full set (``first_touch >= ways``).  Push flags, survival and the final
    residency are derived per *residency interval* — each miss of a line
    opens one — because a pushed line carries the OR of the flags of
    exactly the references inside its residency.  Victim↔eviction matching
    for warmup accounting uses the LRU invariant that successive victims'
    final-touch times strictly increase within a segment.
    """
    ways = cache.geometry.ways
    positions = bundle.positions
    distances = bundle.distances
    n = len(distances)
    pp = bundle.purge_positions
    total_purges = len(pp)

    miss = distances > ways
    if warmup:
        measured = positions >= warmup
        refs = np.bincount(bundle.kinds[measured], minlength=4)
        counted_miss = miss & measured
    else:
        measured = None
        refs = bundle.kind_counts
        counted_miss = miss
    miss_by_kind = np.bincount(bundle.kinds[counted_miss], minlength=4)
    demand = int(miss_by_kind.sum())

    eviction = miss & (bundle.first_touch >= ways)

    # Residency intervals in line_order space: every line group opens with
    # a (cold) miss, so consecutive miss markers delimit residencies even
    # across group boundaries.
    miss_grouped = miss[bundle.line_order]
    res_start = np.flatnonzero(miss_grouped)
    if len(res_start):
        res_flags = np.bitwise_or.reduceat(bundle.flag_or, res_start)
        res_last = np.append(res_start[1:], n) - 1       # line_order index
        res_last_pos = bundle.line_order[res_last]       # set-order index
        # Survives its epoch iff it is the line's final residency there and
        # fewer than `ways` other lines finish after its last touch.
        survive = bundle.last_in_epoch[res_last] & (
            bundle.suffix_last[res_last_pos] < ways
        )
    else:
        res_flags = np.empty(0, dtype=np.int64)
        res_last_pos = np.empty(0, dtype=np.int64)
        survive = np.empty(0, dtype=bool)
    evicted = ~survive
    res_epoch = (
        bundle.epochs[res_last_pos]
        if bundle.epochs is not None
        else np.zeros(len(res_flags), dtype=np.int64)
    )
    purged = survive & (res_epoch < total_purges)
    final = survive & (res_epoch == total_purges)

    if warmup:
        # Eviction events (set order = per-segment time order) pair with
        # evicted residencies sorted by final touch: within a segment, LRU
        # victims' last-touch times strictly increase, and counts match
        # per segment, so one global zip aligns them.
        event_pos = positions[eviction]
        counted_event = event_pos >= warmup
        rpush = int(np.count_nonzero(counted_event))
        evicted_flags = res_flags[evicted]
        order = np.argsort(res_last_pos[evicted])
        pushed_evicted = evicted_flags[order][counted_event]
        counted_purge = pp[res_epoch[purged]] > warmup
        pushed_purged = res_flags[purged][counted_purge]
        purges = int(np.count_nonzero(pp > warmup))
    else:
        rpush = int(np.count_nonzero(eviction))
        pushed_evicted = res_flags[evicted]
        pushed_purged = res_flags[purged]
        purges = total_purges
    ppush = len(pushed_purged)
    data_e, ddata_e, dirty_e = _push_tally(pushed_evicted)
    data_p, ddata_p, dirty_p = _push_tally(pushed_purged)

    if warmup:
        cache.reset_statistics()
    stats = cache.stats
    for kind, counts in enumerate(stats.counts_by_kind()):
        counts.references += int(refs[kind])
        counts.misses += int(miss_by_kind[kind])
    stats.demand_fetches += demand
    stats.replacement_pushes += rpush
    stats.purge_pushes += ppush
    stats.dirty_pushes += dirty_e + dirty_p
    stats.data_pushes += data_e + data_p
    stats.dirty_data_pushes += ddata_e + ddata_p
    stats.purges += purges
    if total_purges:
        cache._last_write_word = -1

    # Final state: survivors of the post-last-purge epoch, inserted in
    # ascending final-touch order — per set, that is exactly the engine's
    # least-recent-first dict order.
    final_index = np.flatnonzero(final)
    if len(final_index):
        sets = cache._sets
        set_mask = cache.geometry.num_sets - 1
        last_pos = res_last_pos[final_index]
        order = np.argsort(last_pos)
        final_lines = bundle.lines[last_pos[order]]
        final_flags = res_flags[final_index][order]
        for line, flags in zip(final_lines.tolist(), final_flags.tolist()):
            sets[line & set_mask][line] = flags


# -- the dict-loop replay paths ----------------------------------------------


def _replay_member(
    cache: Cache,
    kinds: list[int],
    lines: list[int],
    events: list[tuple[int, int, int]],
) -> None:
    """Tight LRU replay of one cache array's line-reference stream.

    ``events`` are ``(stream_index, trace_position, tag)`` triples, sorted;
    each fires after ``stream_index`` elements have been applied.  Covers
    the LRU cases the vectorized path cannot: warm starting state and
    write-through without write-allocate.
    """
    set_mask = cache.geometry.num_sets - 1
    ways = cache.geometry.ways
    copy_back = cache.write_policy.is_copy_back
    allocate = cache.write_policy.allocate_on_write

    # Per-kind flag bitmasks (index = int(AccessKind)): what a reference of
    # that kind ORs into its line, mirroring Cache._reference_line.
    flag_of = [
        FLAG_REFERENCED,
        FLAG_REFERENCED | FLAG_DATA,
        FLAG_REFERENCED | FLAG_DATA | (FLAG_DIRTY if copy_back else 0),
        FLAG_REFERENCED,
    ]

    # Work on plain dicts (markedly faster than OrderedDict in this loop);
    # seeded from, and written back to, the cache's own sets so arbitrary
    # starting state and subsequent generic accesses both stay exact.
    sets = [dict(resident) for resident in cache._sets]

    refs = [0, 0, 0, 0]
    misses = [0, 0, 0, 0]
    demand = rpush = ppush = dirty = data = ddata = purges = 0

    start = 0
    total = len(kinds)
    for stop, _position, tag in [*events, (total, -1, -1)]:
        if stop > start:
            for kind, line in zip(kinds[start:stop], lines[start:stop]):
                refs[kind] += 1
                resident = sets[line & set_mask]
                flags = resident.pop(line, None)
                if flags is not None:
                    # Hit: update flags and move to the LRU tail.
                    resident[line] = flags | flag_of[kind]
                else:
                    misses[kind] += 1
                    if kind == 2 and not allocate:
                        continue  # no-allocate: the store bypasses the cache
                    demand += 1
                    if len(resident) >= ways:
                        victim_flags = resident.pop(next(iter(resident)))
                        rpush += 1
                        if victim_flags & FLAG_DATA:
                            data += 1
                            if victim_flags & FLAG_DIRTY:
                                ddata += 1
                        if victim_flags & FLAG_DIRTY:
                            dirty += 1
                    resident[line] = flag_of[kind]
            start = stop
        if tag == _PURGE:
            for resident in sets:
                for victim_flags in resident.values():
                    ppush += 1
                    if victim_flags & FLAG_DATA:
                        data += 1
                        if victim_flags & FLAG_DIRTY:
                            ddata += 1
                    if victim_flags & FLAG_DIRTY:
                        dirty += 1
                resident.clear()
            purges += 1
            cache._last_write_word = -1
        elif tag == _RESET:
            refs = [0, 0, 0, 0]
            misses = [0, 0, 0, 0]
            demand = rpush = ppush = dirty = data = ddata = purges = 0
            cache.reset_statistics()

    stats = cache.stats
    for kind, counts in enumerate(stats.counts_by_kind()):
        counts.references += refs[kind]
        counts.misses += misses[kind]
    stats.demand_fetches += demand
    stats.replacement_pushes += rpush
    stats.purge_pushes += ppush
    stats.dirty_pushes += dirty
    stats.data_pushes += data
    stats.dirty_data_pushes += ddata
    stats.purges += purges

    for target, resident in zip(cache._sets, sets):
        target.clear()
        target.update(resident)  # dict order is recency order


class _BlockedIntegers:
    """Block-drawn bounded integers, bit-identical to scalar draws.

    ``Generator.integers(bound, size=n)`` vends the same values and leaves
    the same bit-generator state as ``n`` successive scalar
    ``integers(bound)`` calls, so blocks chain seamlessly: each new block
    continues the exact scalar sequence.  Draws are over-provisioned for
    speed; :meth:`finalize` rewinds the generator to its starting state
    and re-consumes exactly the draws handed out, so the final state is
    indistinguishable from the scalar loop's.
    """

    __slots__ = ("_rng", "_bound", "_state0", "_buffer", "_next", "_count")

    def __init__(self, rng, bound: int) -> None:
        self._rng = rng
        self._bound = bound
        self._state0 = rng.bit_generator.state
        self._buffer: list[int] = []
        self._next = 0
        self._count = 0

    def next(self) -> int:
        """The next bounded integer of the scalar sequence."""
        if self._next >= len(self._buffer):
            size = max(64, 2 * len(self._buffer))
            self._buffer = self._rng.integers(self._bound, size=size).tolist()
            self._next = 0
        value = self._buffer[self._next]
        self._next += 1
        self._count += 1
        return value

    def finalize(self) -> None:
        """Leave the generator exactly where scalar consumption would."""
        self._rng.bit_generator.state = self._state0
        if self._count:
            self._rng.integers(self._bound, size=self._count)


def _replay_member_queue(
    cache: Cache,
    kinds: list[int],
    lines: list[int],
    events: list[tuple[int, int, int]],
    rngs: list | None,
) -> None:
    """FIFO/RANDOM replay of one cache array's line-reference stream.

    The DEW fast path: neither policy reorders on a hit, so the hit path
    is a plain dict store (dict insertion order *is* FIFO order).  FIFO
    evicts the insertion-order head; RANDOM draws the victim through the
    cache's own per-set generators (``rngs``) via block-drawing
    :class:`_BlockedIntegers` vendors — the victim sequence and the
    generator state after replay are identical to scalar consumption.
    """
    set_mask = cache.geometry.num_sets - 1
    ways = cache.geometry.ways
    copy_back = cache.write_policy.is_copy_back
    allocate = cache.write_policy.allocate_on_write

    flag_of = [
        FLAG_REFERENCED,
        FLAG_REFERENCED | FLAG_DATA,
        FLAG_REFERENCED | FLAG_DATA | (FLAG_DIRTY if copy_back else 0),
        FLAG_REFERENCED,
    ]

    sets = [dict(resident) for resident in cache._sets]
    vendors = (
        None if rngs is None else [_BlockedIntegers(rng, ways) for rng in rngs]
    )

    refs = [0, 0, 0, 0]
    misses = [0, 0, 0, 0]
    demand = rpush = ppush = dirty = data = ddata = purges = 0

    start = 0
    total = len(kinds)
    for stop, _position, tag in [*events, (total, -1, -1)]:
        if stop > start:
            for kind, line in zip(kinds[start:stop], lines[start:stop]):
                refs[kind] += 1
                resident = sets[line & set_mask]
                flags = resident.get(line)
                if flags is not None:
                    resident[line] = flags | flag_of[kind]  # no reorder
                else:
                    misses[kind] += 1
                    if kind == 2 and not allocate:
                        continue
                    demand += 1
                    if len(resident) >= ways:
                        if vendors is None:
                            victim = next(iter(resident))
                        else:
                            # Eviction only fires on a full set, so the
                            # vendor's fixed bound == len(resident) == ways.
                            keys = list(resident)
                            victim = keys[vendors[line & set_mask].next()]
                        victim_flags = resident.pop(victim)
                        rpush += 1
                        if victim_flags & FLAG_DATA:
                            data += 1
                            if victim_flags & FLAG_DIRTY:
                                ddata += 1
                        if victim_flags & FLAG_DIRTY:
                            dirty += 1
                    resident[line] = flag_of[kind]
            start = stop
        if tag == _PURGE:
            for resident in sets:
                for victim_flags in resident.values():
                    ppush += 1
                    if victim_flags & FLAG_DATA:
                        data += 1
                        if victim_flags & FLAG_DIRTY:
                            ddata += 1
                    if victim_flags & FLAG_DIRTY:
                        dirty += 1
                resident.clear()
            purges += 1
            cache._last_write_word = -1
        elif tag == _RESET:
            refs = [0, 0, 0, 0]
            misses = [0, 0, 0, 0]
            demand = rpush = ppush = dirty = data = ddata = purges = 0
            cache.reset_statistics()

    if vendors is not None:
        for vendor in vendors:
            vendor.finalize()

    stats = cache.stats
    for kind, counts in enumerate(stats.counts_by_kind()):
        counts.references += refs[kind]
        counts.misses += misses[kind]
    stats.demand_fetches += demand
    stats.replacement_pushes += rpush
    stats.purge_pushes += ppush
    stats.dirty_pushes += dirty
    stats.data_pushes += data
    stats.dirty_data_pushes += ddata
    stats.purges += purges

    for target, resident in zip(cache._sets, sets):
        target.clear()
        target.update(resident)  # dict order is insertion (FIFO) order


# -- the all-associativity one-pass kernel -----------------------------------


def all_associativity_hit_counts(
    lines: np.ndarray,
    num_sets: int,
    max_ways: int,
    resets: np.ndarray | Sequence[int] | None = None,
) -> tuple[np.ndarray, int]:
    """Hit counts for every associativity 1..``max_ways`` at one set count.

    At a fixed set count, a reference hits in a W-way LRU cache iff its
    stack distance *within its set* is at most W — so one pass computing
    per-set stack distances yields the whole associativity column at once.
    The set mapping is the engine's bit selection (``line & (num_sets-1)``),
    and the distances come from the vectorized
    :func:`~repro.core.stackdist.set_stack_distances` pass.

    Args:
        lines: expanded memory-line stream (one element per line reference,
            e.g. ``trace.compiled(line_size).lines``).
        num_sets: number of sets; must be a positive power of two.
        max_ways: largest associativity of interest.
        resets: optional indices into ``lines`` at which every set's LRU
            stack is purged before the reference at that index (task-switch
            purges hit all associativities at the same instant, so the
            inclusion property survives).

    Returns:
        ``(hits, total)``: ``hits[w]`` is the number of references that hit
        in a ``num_sets x w`` LRU demand-fetch cache, for ``w`` in
        0..``max_ways`` (``hits[0]`` is 0); ``total`` is the number of
        references.

    Raises:
        ValueError: if ``num_sets`` is not a positive power of two or
            ``max_ways`` is not positive.
    """
    if num_sets <= 0 or num_sets & (num_sets - 1):
        raise ValueError(f"num_sets must be a positive power of two, got {num_sets}")
    if max_ways <= 0:
        raise ValueError(f"max_ways must be positive, got {max_ways}")
    lines = np.asarray(lines, dtype=np.int64)
    total = len(lines)
    if total == 0:
        return np.zeros(max_ways + 1, dtype=np.int64), 0

    distances = set_stack_distances(lines, num_sets, resets)
    # hist[d] counts references at (clipped) per-set stack distance d;
    # distances beyond max_ways share one miss bucket.
    miss_bucket = max_ways + 1
    hist = np.bincount(
        np.minimum(distances, miss_bucket), minlength=miss_bucket + 1
    )
    return np.cumsum(hist)[: max_ways + 1], total


def associativity_miss_surface(
    trace: Trace,
    ways: Sequence[int | None],
    capacities: Sequence[int],
    line_size: int = 16,
) -> np.ndarray:
    """Miss-ratio surface over (ways x capacities) for LRU demand caches.

    One pass per *distinct set count* replaces one full simulation per
    grid cell: cells at different (ways, capacity) that share a set count
    are read off the same :func:`all_associativity_hit_counts` pass, and
    fully associative rows (``None``) come from the classic stack profile.
    Exact: equal to ``simulate(trace, UnifiedCache(CacheGeometry(capacity,
    line_size, ways)))`` miss ratios, cell for cell.

    Args:
        trace: the reference stream.
        ways: associativities; ``None`` denotes fully associative.
        capacities: cache capacities in bytes.
        line_size: line size in bytes.

    Returns:
        Array of shape ``(len(ways), len(capacities))``.

    Raises:
        ValueError: for capacities that are not positive multiples of the
            line size, non-positive ways, or an associativity that does not
            divide a capacity's line count (the geometries the engine
            itself rejects).
    """
    capacities = [int(capacity) for capacity in capacities]
    if any(capacity <= 0 or capacity % line_size for capacity in capacities):
        raise ValueError(
            f"capacities must be positive multiples of line_size={line_size}"
        )
    compiled = trace.compiled(line_size)
    lines = compiled.lines
    total = len(lines)
    surface = np.empty((len(ways), len(capacities)))

    # Group cells by their set count; every group is one pass.  A fully
    # associative cell is just the num_sets=1, ways=capacity_lines corner,
    # so the ``None`` rows join the same grouping.  (Capacities and line
    # sizes are powers of two, so any dividing associativity yields a
    # power-of-two set count.)
    cells_by_sets: dict[int, list[tuple[int, int, int]]] = {}
    for i, way in enumerate(ways):
        if way is not None and way <= 0:
            raise ValueError(f"associativity must be positive, got {way}")
        for j, capacity in enumerate(capacities):
            num_lines = capacity // line_size
            if way is None:
                cells_by_sets.setdefault(1, []).append((i, j, num_lines))
                continue
            if num_lines % way:
                raise ValueError(
                    f"associativity {way} does not divide {num_lines} lines"
                )
            cells_by_sets.setdefault(num_lines // way, []).append((i, j, way))

    # Miss ratios are formed as (total - hits) / total — the same integer
    # division the engine's misses/references performs, so the surface is
    # bit-identical to direct simulation, not merely close.
    for num_sets, cells in cells_by_sets.items():
        hits, _ = all_associativity_hit_counts(
            lines, num_sets, max(way for _i, _j, way in cells)
        )
        for i, j, way in cells:
            surface[i, j] = (total - int(hits[way])) / total if total else 0.0
    return surface
