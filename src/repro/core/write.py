"""Write policies.

The paper's standard configuration is **copy back with fetch on write**
(write-allocate): a store to a non-resident line first fetches the line,
then marks it dirty; memory is updated only when the dirty line is pushed
out.  Write-through — memory updated on every store — is provided as the
comparison point of Section 3.3, with and without allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["WriteStrategy", "WritePolicy", "COPY_BACK", "WRITE_THROUGH", "WRITE_THROUGH_ALLOCATE"]


class WriteStrategy(enum.Enum):
    """How stores reach main memory."""

    #: Dirty lines are written back when pushed (paper's default).
    COPY_BACK = "copy-back"
    #: Every store is forwarded to memory immediately.
    WRITE_THROUGH = "write-through"


@dataclass(frozen=True, slots=True)
class WritePolicy:
    """A write strategy plus its allocation behaviour.

    Args:
        strategy: copy-back or write-through.
        allocate_on_write: whether a store miss brings the line into the
            cache ("fetch on write").  Copy-back caches almost always
            allocate; the paper's does.  Write-through caches commonly do
            not.
        combining_bytes: width of a write-combining buffer for
            write-through traffic, or 0 for none.  Section 3.3's exception:
            "an implementation in which adjacent short writes are combined
            into a longer write, as when two 2-byte writes are combined
            into a four byte write to a memory with at least a 4 byte wide
            interface" — consecutive stores falling in the same aligned
            ``combining_bytes`` word cost one memory transaction.

    Raises:
        ValueError: for a copy-back policy without write allocation (a
            store miss would have nowhere to put its data), a copy-back
            policy with a combining buffer (combining applies to
            write-through traffic), or a negative combining width.
    """

    strategy: WriteStrategy = WriteStrategy.COPY_BACK
    allocate_on_write: bool = True
    combining_bytes: int = 0

    def __post_init__(self) -> None:
        if self.strategy is WriteStrategy.COPY_BACK and not self.allocate_on_write:
            raise ValueError("copy-back requires allocate_on_write (fetch on write)")
        if self.combining_bytes < 0:
            raise ValueError(
                f"combining_bytes must be non-negative, got {self.combining_bytes}"
            )
        if self.strategy is WriteStrategy.COPY_BACK and self.combining_bytes:
            raise ValueError("write combining applies to write-through only")

    @property
    def is_copy_back(self) -> bool:
        """True for copy-back."""
        return self.strategy is WriteStrategy.COPY_BACK


#: Paper-standard policy: copy back, fetch on write.
COPY_BACK = WritePolicy(WriteStrategy.COPY_BACK, allocate_on_write=True)
#: Write-through without allocation (store misses bypass the cache).
WRITE_THROUGH = WritePolicy(WriteStrategy.WRITE_THROUGH, allocate_on_write=False)
#: Write-through with allocation.
WRITE_THROUGH_ALLOCATE = WritePolicy(WriteStrategy.WRITE_THROUGH, allocate_on_write=True)
