"""The simulation drive loop.

:func:`simulate` replays a trace through a cache organization, optionally
purging the cache at a fixed reference interval to model task switching —
the paper's multiprogramming device ("every 20,000 memory references, the
cache is purged to simulate multiprogramming", Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.stream import Trace
from . import kernels
from .organization import CacheOrganization
from .stats import CacheStats

__all__ = ["SimulationReport", "simulate"]


@dataclass(frozen=True, slots=True)
class SimulationReport:
    """Outcome of one trace x configuration simulation run.

    Attributes:
        trace_name: name of the trace replayed.
        references: number of references applied.
        purge_interval: task-switch quantum used (None = no purging).
        overall: aggregate statistics (both caches, if split).
        instruction: statistics of the instruction side.  For a unified
            organization this is the same object as :attr:`overall`; use the
            per-class counters inside it.
        data: statistics of the data side (ditto for unified).
    """

    trace_name: str
    references: int
    purge_interval: int | None
    overall: CacheStats
    instruction: CacheStats
    data: CacheStats
    #: Per-mechanism statistics for miss-path components, in chain order:
    #: ``(name, stats)`` snapshots (empty without a miss path).  The
    #: per-class counters of a component's block record *probes* of that
    #: component, so its hit rate is ``1 - stats.miss_ratio``.
    mechanisms: tuple[tuple[str, CacheStats], ...] = ()

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio."""
        return self.overall.miss_ratio

    @property
    def mechanism_names(self) -> tuple[str, ...]:
        """Names of the attached miss-path components, chain order."""
        return tuple(name for name, _ in self.mechanisms)

    def mechanism(self, name: str) -> CacheStats:
        """Stats block of one miss-path component.

        Raises:
            KeyError: if no component of that name was attached.
        """
        for mech_name, stats in self.mechanisms:
            if mech_name == name:
                return stats
        raise KeyError(f"no miss-path component named {name!r}; "
                       f"have {list(self.mechanism_names)}")

    @property
    def effective_miss_ratio(self) -> float:
        """Misses serviced by *memory or the L2* per reference.

        Primary misses serviced by a victim cache, miss cache, or stream
        buffer are nearly free, so the interesting quantity is the miss
        ratio with those hits removed.  An L2 hit still counts here (it is
        slower than the mechanisms, and the L2's own local miss ratio is
        in its stats block).  Equal to :attr:`miss_ratio` without a miss
        path; NaN over zero references.
        """
        refs = self.overall.references
        if refs == 0:
            return float("nan")
        serviced = sum(
            stats.hits for name, stats in self.mechanisms if name != "l2"
        )
        return (self.overall.misses - serviced) / refs

    @property
    def effective_memory_traffic_bytes(self) -> int:
        """Bytes moved on the memory-side bus, mechanisms included.

        Without a miss path this is ``overall.memory_traffic_bytes``.
        With one, fills serviced by a component are not memory traffic;
        stream-buffer fetches are; and with an L2 the memory side is the
        L2's fetch/write-back account (its line size may differ).  See
        docs/mechanisms.md for the exact model.
        """
        if not self.mechanisms:
            return self.overall.memory_traffic_bytes
        named = dict(self.mechanisms)
        l2 = named.get("l2")
        buffers = named.get("stream-buffers")
        prefetch_lines = buffers.prefetches if buffers is not None else 0
        line_size = self.overall.line_size
        if l2 is not None:
            fill_bytes = l2.lines_fetched * l2.line_size
            writeback_bytes = l2.dirty_pushes * l2.line_size
        else:
            comp_hits = sum(stats.hits for _, stats in self.mechanisms)
            fill_bytes = (self.overall.lines_fetched - comp_hits) * line_size
            writeback_bytes = self.overall.dirty_pushes * line_size + sum(
                stats.dirty_pushes * stats.line_size for _, stats in self.mechanisms
            )
        return (
            fill_bytes
            + prefetch_lines * line_size
            + writeback_bytes
            + self.overall.write_through_bytes
        )

    @property
    def instruction_miss_ratio(self) -> float:
        """Instruction-fetch miss ratio."""
        return self.instruction.instruction_miss_ratio

    @property
    def data_miss_ratio(self) -> float:
        """Data (read+write) miss ratio."""
        return self.data.data_miss_ratio


def simulate(
    trace: Trace,
    organization: CacheOrganization,
    purge_interval: int | None = None,
    limit: int | None = None,
    warmup: int = 0,
    engine: str = "auto",
    allow_warm: bool = False,
) -> SimulationReport:
    """Replay ``trace`` through ``organization``.

    Args:
        trace: the reference stream.
        organization: unified or split cache (mutated in place; pass a fresh
            one per run).  A warm organization — resident lines or non-zero
            counters — is rejected unless ``allow_warm=True``, because
            silent reuse double-counts state across runs.
        allow_warm: accept a previously used organization (deliberate
            functional-warming setups, e.g. the sampling engine's stitch
            mode, which resets statistics but keeps contents between
            windows).
        purge_interval: purge the cache every this many references, after
            the references are applied (so an interval equal to the trace
            length purges once, at the end — matching the paper's
            accounting where purge pushes are part of "total lines
            pushed").
        limit: replay at most this many references.
        warmup: replay this many leading references first, then reset the
            statistics before measuring the remainder — removing cold-start
            bias (Section 1.1's caveat about short traces).  The warmup
            prefix counts toward the purge clock but not toward the report.
        engine: ``"auto"`` (default) takes the specialized replay kernel
            when the organization qualifies (see
            :func:`repro.core.kernels.can_replay`) and the generic
            per-reference engine otherwise; ``"generic"`` forces the
            reference engine; ``"kernel"`` requires the fast path.  Every
            engine produces an identical report and identical final cache
            state.

    Returns:
        A report with statistics *snapshots* (safe to keep after the
        organization is reused).  ``references`` counts measured (post-
        warmup) references only.

    Raises:
        ValueError: for a non-positive purge interval, negative limit or
            negative warmup, an unknown ``engine``, ``engine="kernel"``
            with an organization the kernel cannot express, or a warm
            organization without ``allow_warm=True``.
    """
    if purge_interval is not None and purge_interval <= 0:
        raise ValueError(f"purge_interval must be positive, got {purge_interval}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be non-negative, got {limit}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    if engine not in ("auto", "generic", "kernel"):
        raise ValueError(f"engine must be 'auto', 'generic' or 'kernel', got {engine!r}")
    if not allow_warm and organization.is_warm():
        raise ValueError(
            "organization already holds resident lines or statistics; "
            "simulate() needs a fresh one per run (pass allow_warm=True to "
            "reuse a warm organization deliberately)"
        )

    if engine != "generic" and kernels.can_replay(organization):
        measured = kernels.lru_demand_replay(
            trace, organization, purge_interval=purge_interval, limit=limit, warmup=warmup
        )
        return SimulationReport(
            trace_name=trace.metadata.name,
            references=measured,
            purge_interval=purge_interval,
            overall=organization.overall_stats().snapshot(),
            instruction=organization.instruction_stats().snapshot(),
            data=organization.data_stats().snapshot(),
            mechanisms=_mechanism_snapshots(organization),
        )
    if engine == "kernel":
        raise ValueError(
            "organization does not qualify for the specialized replay kernel "
            "(requires LRU, FIFO or random replacement, demand fetch, no "
            "write combining; see repro.core.kernels.can_replay)"
        )

    length = len(trace) if limit is None else min(limit, len(trace))
    # The memoized raw lists are shared across runs; slicing copies, and the
    # full-length path below only iterates, never mutates.
    kinds, addresses, sizes = trace.raw_lists()
    if length != len(kinds):
        kinds = kinds[:length]
        addresses = addresses[:length]
        sizes = sizes[:length]

    warmup = min(warmup, length)
    countdown = purge_interval if purge_interval is not None else 0
    if warmup:
        warm_access = organization.access_raw
        for kind, address, size in zip(
            kinds[:warmup], addresses[:warmup], sizes[:warmup]
        ):
            warm_access(kind, address, size)
            if purge_interval is not None:
                countdown -= 1
                if countdown == 0:
                    organization.purge()
                    countdown = purge_interval
        organization.reset_statistics()
        kinds = kinds[warmup:]
        addresses = addresses[warmup:]
        sizes = sizes[warmup:]
        length -= warmup

    access = organization.access_raw
    if purge_interval is None:
        for kind, address, size in zip(kinds, addresses, sizes):
            access(kind, address, size)
    else:
        # The countdown carries the warmup loop's residual, so the purge
        # clock runs over warmup + measured references as documented.
        purge = organization.purge
        for kind, address, size in zip(kinds, addresses, sizes):
            access(kind, address, size)
            countdown -= 1
            if countdown == 0:
                purge()
                countdown = purge_interval

    return SimulationReport(
        trace_name=trace.metadata.name,
        references=length,
        purge_interval=purge_interval,
        overall=organization.overall_stats().snapshot(),
        instruction=organization.instruction_stats().snapshot(),
        data=organization.data_stats().snapshot(),
        mechanisms=_mechanism_snapshots(organization),
    )


def _mechanism_snapshots(
    organization: CacheOrganization,
) -> tuple[tuple[str, CacheStats], ...]:
    return tuple(
        (name, stats.snapshot()) for name, stats in organization.mechanism_stats()
    )
