"""Cache organizations: unified, and split instruction/data.

Section 3.5 of the paper simulates both: "Two cache organizations were
simulated, a unified (instructions and data) and a split (separate
instruction and data caches) design."  The write-back study of Table 3 uses
a split design ("a 32K-byte memory is simulated, partitioned into a
16K-byte data cache and 16K-byte instruction cache").
"""

from __future__ import annotations

import abc

from ..trace.record import AccessKind, MemoryAccess
from .address import CacheGeometry
from .cache import Cache
from .fetch import FetchPolicy
from .replacement import ReplacementPolicyFactory
from .stats import CacheStats
from .write import COPY_BACK, WritePolicy

__all__ = ["CacheOrganization", "UnifiedCache", "SplitCache"]

_IFETCH = int(AccessKind.IFETCH)
_READ = int(AccessKind.READ)
_WRITE = int(AccessKind.WRITE)
_FETCH = int(AccessKind.FETCH)


class CacheOrganization(abc.ABC):
    """Common interface over unified and split cache designs."""

    @abc.abstractmethod
    def access_raw(self, kind: int, address: int, size: int) -> bool:
        """Apply one reference (hot path); True iff it hit."""

    def access(self, access: MemoryAccess) -> bool:
        """Apply one typed reference; True iff it hit."""
        return self.access_raw(int(access.kind), access.address, access.size)

    @abc.abstractmethod
    def purge(self) -> None:
        """Invalidate everything (task switch)."""

    @abc.abstractmethod
    def reset_statistics(self) -> None:
        """Zero all counters without touching cache contents (warm start)."""

    @abc.abstractmethod
    def overall_stats(self) -> CacheStats:
        """Aggregate statistics over all constituent caches."""

    @abc.abstractmethod
    def instruction_stats(self) -> CacheStats:
        """Statistics for instruction references (their cache, if split)."""

    @abc.abstractmethod
    def data_stats(self) -> CacheStats:
        """Statistics for data references (their cache, if split)."""

    def replay_plan(self) -> tuple[tuple[Cache, ...], tuple[int, int, int, int]] | None:
        """Structure for the fast replay kernels, or None if opaque.

        Returns ``(members, routing)``: the constituent :class:`Cache`
        arrays and, for each ``int(AccessKind)`` 0..3, the index of the
        member that receives references of that kind.  Organizations with
        behaviour the kernels cannot express (e.g. sector caches) keep the
        default ``None`` and always take the generic per-reference engine.
        """
        return None


class UnifiedCache(CacheOrganization):
    """One cache for instructions and data — the paper's Table 1 design.

    Args: identical to :class:`repro.core.cache.Cache`.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement: ReplacementPolicyFactory | None = None,
        write_policy: WritePolicy = COPY_BACK,
        fetch_policy: FetchPolicy = FetchPolicy.DEMAND,
    ) -> None:
        self.cache = Cache(geometry, replacement, write_policy, fetch_policy)

    def access_raw(self, kind: int, address: int, size: int) -> bool:
        return self.cache.access_raw(kind, address, size)

    def purge(self) -> None:
        self.cache.purge()

    def reset_statistics(self) -> None:
        self.cache.reset_statistics()

    def overall_stats(self) -> CacheStats:
        return self.cache.stats

    def instruction_stats(self) -> CacheStats:
        # The unified cache cannot attribute traffic by class; per-class
        # miss counters live inside the single CacheStats.
        return self.cache.stats

    def data_stats(self) -> CacheStats:
        return self.cache.stats

    def replay_plan(self) -> tuple[tuple[Cache, ...], tuple[int, int, int, int]]:
        return (self.cache,), (0, 0, 0, 0)


class SplitCache(CacheOrganization):
    """Separate instruction and data caches.

    Instruction fetches go to the I-cache; reads and writes to the D-cache.
    Monitor-style :attr:`AccessKind.FETCH` references (indistinguishable
    ifetch/read, M68000 traces) are routed per ``fetch_routing``.

    Args:
        instruction_geometry: geometry of the I-cache.
        data_geometry: geometry of the D-cache; defaults to the instruction
            geometry (the paper's split experiments use equal halves).
        replacement / write_policy / fetch_policy: as for
            :class:`~repro.core.cache.Cache`, applied to both halves.
        fetch_routing: ``"instruction"`` (default) or ``"data"`` — where
            unclassified FETCH references go.

    Raises:
        ValueError: if the two geometries have different line sizes or
            ``fetch_routing`` is invalid.
    """

    def __init__(
        self,
        instruction_geometry: CacheGeometry,
        data_geometry: CacheGeometry | None = None,
        replacement: ReplacementPolicyFactory | None = None,
        write_policy: WritePolicy = COPY_BACK,
        fetch_policy: FetchPolicy = FetchPolicy.DEMAND,
        fetch_routing: str = "instruction",
    ) -> None:
        data_geometry = data_geometry or instruction_geometry
        if instruction_geometry.line_size != data_geometry.line_size:
            raise ValueError(
                "instruction and data caches must share a line size, got "
                f"{instruction_geometry.line_size} and {data_geometry.line_size}"
            )
        if fetch_routing not in ("instruction", "data"):
            raise ValueError(
                f"fetch_routing must be 'instruction' or 'data', got {fetch_routing!r}"
            )
        self.icache = Cache(instruction_geometry, replacement, write_policy, fetch_policy)
        self.dcache = Cache(data_geometry, replacement, write_policy, fetch_policy)
        self._fetch_to_icache = fetch_routing == "instruction"

    def access_raw(self, kind: int, address: int, size: int) -> bool:
        if kind == _IFETCH or (kind == _FETCH and self._fetch_to_icache):
            return self.icache.access_raw(kind, address, size)
        return self.dcache.access_raw(kind, address, size)

    def purge(self) -> None:
        self.icache.purge()
        self.dcache.purge()

    def reset_statistics(self) -> None:
        self.icache.reset_statistics()
        self.dcache.reset_statistics()

    def overall_stats(self) -> CacheStats:
        combined = CacheStats(line_size=self.icache.geometry.line_size)
        combined.merge(self.icache.stats)
        combined.merge(self.dcache.stats)
        return combined

    def instruction_stats(self) -> CacheStats:
        return self.icache.stats

    def data_stats(self) -> CacheStats:
        return self.dcache.stats

    def replay_plan(self) -> tuple[tuple[Cache, ...], tuple[int, int, int, int]]:
        fetch_member = 0 if self._fetch_to_icache else 1
        return (self.icache, self.dcache), (0, 1, 1, fetch_member)
