"""Cache organizations: unified, and split instruction/data.

Section 3.5 of the paper simulates both: "Two cache organizations were
simulated, a unified (instructions and data) and a split (separate
instruction and data caches) design."  The write-back study of Table 3 uses
a split design ("a 32K-byte memory is simulated, partitioned into a
16K-byte data cache and 16K-byte instruction cache").
"""

from __future__ import annotations

import abc

from ..trace.record import AccessKind, MemoryAccess
from .address import CacheGeometry
from .cache import Cache
from .fetch import FetchPolicy
from .misspath import MissPathChain, SecondLevelCache, StreamBuffers
from .replacement import ReplacementPolicyFactory
from .stats import CacheStats
from .write import COPY_BACK, WritePolicy

__all__ = ["CacheOrganization", "UnifiedCache", "SplitCache"]


def _stats_touched(stats: CacheStats) -> bool:
    """True iff any activity has been recorded in ``stats``."""
    return bool(
        stats.references
        or stats.pushes
        or stats.lines_fetched
        or stats.write_throughs
        or stats.combined_writes
        or stats.purges
    )


def _build_chain(miss_path, fetch_policy: FetchPolicy) -> MissPathChain | None:
    """Normalize a ``miss_path`` argument into a fresh chain (or None).

    Accepts a :class:`MissPathChain`, a sequence of components, or None.
    When the fetch policy is :attr:`FetchPolicy.STREAM` and the chain has
    no stream buffers yet, a default set is inserted (before any L2, so
    the buffers service misses ahead of it).
    """
    if miss_path is None:
        components = []
    elif isinstance(miss_path, MissPathChain):
        components = list(miss_path.components)
    else:
        components = list(miss_path)
    if fetch_policy is FetchPolicy.STREAM and not any(
        isinstance(comp, StreamBuffers) for comp in components
    ):
        buffers = StreamBuffers()
        for index, comp in enumerate(components):
            if isinstance(comp, SecondLevelCache):
                components.insert(index, buffers)
                break
        else:
            components.append(buffers)
    if not components:
        return None
    return MissPathChain(components)

_IFETCH = int(AccessKind.IFETCH)
_READ = int(AccessKind.READ)
_WRITE = int(AccessKind.WRITE)
_FETCH = int(AccessKind.FETCH)


class CacheOrganization(abc.ABC):
    """Common interface over unified and split cache designs."""

    @abc.abstractmethod
    def access_raw(self, kind: int, address: int, size: int) -> bool:
        """Apply one reference (hot path); True iff it hit."""

    def access(self, access: MemoryAccess) -> bool:
        """Apply one typed reference; True iff it hit."""
        return self.access_raw(int(access.kind), access.address, access.size)

    @abc.abstractmethod
    def purge(self) -> None:
        """Invalidate everything (task switch)."""

    @abc.abstractmethod
    def reset_statistics(self) -> None:
        """Zero all counters without touching cache contents (warm start)."""

    @abc.abstractmethod
    def overall_stats(self) -> CacheStats:
        """Aggregate statistics over all constituent caches."""

    @abc.abstractmethod
    def instruction_stats(self) -> CacheStats:
        """Statistics for instruction references (their cache, if split)."""

    @abc.abstractmethod
    def data_stats(self) -> CacheStats:
        """Statistics for data references (their cache, if split)."""

    def mechanism_stats(self) -> tuple[tuple[str, CacheStats], ...]:
        """(name, stats) per attached miss-path component, chain order.

        Organizations without a miss path return the empty tuple.
        """
        return ()

    def is_warm(self) -> bool:
        """True iff the organization holds resident lines or counters.

        :func:`repro.core.simulator.simulate` uses this to reject
        accidental reuse of a warm organization.  The base implementation
        only sees the counters; concrete organizations also check for
        resident lines.
        """
        return _stats_touched(self.overall_stats())

    def replay_plan(self) -> tuple[tuple[Cache, ...], tuple[int, int, int, int]] | None:
        """Structure for the fast replay kernels, or None if opaque.

        Returns ``(members, routing)``: the constituent :class:`Cache`
        arrays and, for each ``int(AccessKind)`` 0..3, the index of the
        member that receives references of that kind.  Organizations with
        behaviour the kernels cannot express (e.g. sector caches) keep the
        default ``None`` and always take the generic per-reference engine.
        """
        return None


class UnifiedCache(CacheOrganization):
    """One cache for instructions and data — the paper's Table 1 design.

    Args: identical to :class:`repro.core.cache.Cache`, plus ``miss_path``
    — a :class:`~repro.core.misspath.MissPathChain` or sequence of
    :class:`~repro.core.misspath.MissPathComponent` attached to the miss
    path.  ``fetch_policy=FetchPolicy.STREAM`` attaches default stream
    buffers automatically.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement: ReplacementPolicyFactory | None = None,
        write_policy: WritePolicy = COPY_BACK,
        fetch_policy: FetchPolicy = FetchPolicy.DEMAND,
        miss_path=None,
    ) -> None:
        chain = _build_chain(miss_path, fetch_policy)
        self.cache = Cache(
            geometry, replacement, write_policy, fetch_policy, miss_path=chain
        )
        self.miss_path = chain
        if chain is not None:
            chain.attach((self.cache,), geometry.line_size)

    def access_raw(self, kind: int, address: int, size: int) -> bool:
        return self.cache.access_raw(kind, address, size)

    def purge(self) -> None:
        self.cache.purge()
        if self.miss_path is not None:
            self.miss_path.purge()

    def reset_statistics(self) -> None:
        self.cache.reset_statistics()
        if self.miss_path is not None:
            self.miss_path.reset_statistics()

    def mechanism_stats(self) -> tuple[tuple[str, CacheStats], ...]:
        return self.miss_path.mechanism_stats() if self.miss_path is not None else ()

    def is_warm(self) -> bool:
        if len(self.cache) or _stats_touched(self.cache.stats):
            return True
        return self.miss_path is not None and self.miss_path.is_warm()

    def overall_stats(self) -> CacheStats:
        return self.cache.stats

    def instruction_stats(self) -> CacheStats:
        # The unified cache cannot attribute traffic by class; per-class
        # miss counters live inside the single CacheStats.
        return self.cache.stats

    def data_stats(self) -> CacheStats:
        return self.cache.stats

    def replay_plan(self) -> tuple[tuple[Cache, ...], tuple[int, int, int, int]]:
        return (self.cache,), (0, 0, 0, 0)


class SplitCache(CacheOrganization):
    """Separate instruction and data caches.

    Instruction fetches go to the I-cache; reads and writes to the D-cache.
    Monitor-style :attr:`AccessKind.FETCH` references (indistinguishable
    ifetch/read, M68000 traces) are routed per ``fetch_routing``.

    Args:
        instruction_geometry: geometry of the I-cache.
        data_geometry: geometry of the D-cache; defaults to the instruction
            geometry (the paper's split experiments use equal halves).
        replacement / write_policy / fetch_policy: as for
            :class:`~repro.core.cache.Cache`, applied to both halves.
        fetch_routing: ``"instruction"`` (default) or ``"data"`` — where
            unclassified FETCH references go.
        miss_path: optional miss-path chain (or component sequence),
            *shared* between the two halves — a victim cache catches both
            caches' victims and a unified L2 backs both, matching the
            split-L1 + unified-L2 two-level design.

    Raises:
        ValueError: if the two geometries have different line sizes or
            ``fetch_routing`` is invalid.
    """

    def __init__(
        self,
        instruction_geometry: CacheGeometry,
        data_geometry: CacheGeometry | None = None,
        replacement: ReplacementPolicyFactory | None = None,
        write_policy: WritePolicy = COPY_BACK,
        fetch_policy: FetchPolicy = FetchPolicy.DEMAND,
        fetch_routing: str = "instruction",
        miss_path=None,
    ) -> None:
        data_geometry = data_geometry or instruction_geometry
        if instruction_geometry.line_size != data_geometry.line_size:
            raise ValueError(
                "instruction and data caches must share a line size, got "
                f"{instruction_geometry.line_size} and {data_geometry.line_size}"
            )
        if fetch_routing not in ("instruction", "data"):
            raise ValueError(
                f"fetch_routing must be 'instruction' or 'data', got {fetch_routing!r}"
            )
        chain = _build_chain(miss_path, fetch_policy)
        self.icache = Cache(
            instruction_geometry, replacement, write_policy, fetch_policy,
            miss_path=chain,
        )
        self.dcache = Cache(
            data_geometry, replacement, write_policy, fetch_policy, miss_path=chain
        )
        self.miss_path = chain
        if chain is not None:
            chain.attach((self.icache, self.dcache), instruction_geometry.line_size)
        self._fetch_to_icache = fetch_routing == "instruction"

    def access_raw(self, kind: int, address: int, size: int) -> bool:
        if kind == _IFETCH or (kind == _FETCH and self._fetch_to_icache):
            return self.icache.access_raw(kind, address, size)
        return self.dcache.access_raw(kind, address, size)

    def purge(self) -> None:
        self.icache.purge()
        self.dcache.purge()
        if self.miss_path is not None:
            self.miss_path.purge()

    def reset_statistics(self) -> None:
        self.icache.reset_statistics()
        self.dcache.reset_statistics()
        if self.miss_path is not None:
            self.miss_path.reset_statistics()

    def mechanism_stats(self) -> tuple[tuple[str, CacheStats], ...]:
        return self.miss_path.mechanism_stats() if self.miss_path is not None else ()

    def is_warm(self) -> bool:
        for cache in (self.icache, self.dcache):
            if len(cache) or _stats_touched(cache.stats):
                return True
        return self.miss_path is not None and self.miss_path.is_warm()

    def overall_stats(self) -> CacheStats:
        combined = CacheStats(line_size=self.icache.geometry.line_size)
        combined.merge(self.icache.stats)
        combined.merge(self.dcache.stats)
        return combined

    def instruction_stats(self) -> CacheStats:
        return self.icache.stats

    def data_stats(self) -> CacheStats:
        return self.dcache.stats

    def replay_plan(self) -> tuple[tuple[Cache, ...], tuple[int, int, int, int]]:
        fetch_member = 0 if self._fetch_to_icache else 1
        return (self.icache, self.dcache), (0, 1, 1, fetch_member)
