"""LRU stack-distance analysis (Mattson's one-pass algorithm), vectorized.

The paper's Table 1 sweeps a fully associative LRU cache across twelve
sizes for 57 traces.  The classic way to run such a sweep — then and now —
is the stack algorithm of Mattson, Gecsei, Slutz and Traiger (1970): because
LRU has the *inclusion property* (the content of a C-line cache is always a
subset of a (C+1)-line cache), one pass over the trace computing each
reference's **stack distance** (its position in the LRU stack, counted from
the top) yields the miss ratio for *every* cache size at once: a reference
hits in a cache of C lines iff its stack distance is at most C.

Distances are computed by whole-array passes rather than a per-reference
loop.  The reduction: with ``p[t]`` the index of the previous reference to
line ``t`` (−1 if none), the stack distance is

    sd(t) = t − p[t] − #{v < t : p[v] > p[t]}

because every duplicate inside the reuse window ``(p[t], t)`` is a
reference ``v`` whose own previous occurrence also lies inside the window,
i.e. ``p[v] > p[t]`` (and ``p[v] < v`` always, so the window constraint
reduces to ``v < t``).  That turns distance computation into per-element
*left-inversion counting* over the ``p`` array, which
:func:`_count_left_greater` performs with a bottom-up blocked merge: at
each level the stream is sorted within blocks (one packed-key ``np.sort``)
and a boolean-marker prefix sum counts, for every right-half element, the
left-half elements exceeding it.  O(n log² n) total, all array ops.

The old pure-Python Fenwick pass (:func:`_distances_fenwick`) is kept as
the reference implementation for equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trace.record import AccessKind
from ..trace.stream import Trace

__all__ = [
    "COLD_DISTANCE",
    "StackDistanceProfile",
    "set_stack_distances",
    "lru_stack_distances",
    "lru_miss_ratio_curve",
]

#: Sentinel distance for a cold (first-touch) reference; larger than any
#: real capacity, so cold references miss at every finite size.
COLD_DISTANCE = np.int64(2) ** 62

#: Block width folded into one broadcast pass before the merge levels
#: start (covers levels 1, 2, 4 and 8 of the bottom-up merge).
_BRUTE = 16


@dataclass(frozen=True, slots=True)
class StackDistanceProfile:
    """Distribution of LRU stack distances for one line-reference stream.

    Attributes:
        counts: ``counts[d]`` is the number of references with stack
            distance ``d`` (1-based; index 0 is unused and zero).
        cold_misses: first-time references (infinite distance — they miss
            in every finite cache).
        total_references: all references, including consecutive repeats.
    """

    counts: np.ndarray
    cold_misses: int
    total_references: int
    #: Lazily computed cumulative hit counts (``_cumulative[c]`` = hits in a
    #: c-line cache).  Every campaign queries the same profile once per
    #: capacity grid per trace, so the cumsum is done once and reused.
    _cumulative: np.ndarray | None = field(default=None, repr=False, compare=False)

    def _cumulative_hits(self) -> np.ndarray:
        cumulative = self._cumulative
        if cumulative is None:
            cumulative = np.concatenate([[0], np.cumsum(self.counts[1:])])
            object.__setattr__(self, "_cumulative", cumulative)  # frozen: memo only
        return cumulative

    def hits(self, capacity_lines: int) -> int:
        """References that hit in a fully associative LRU cache of
        ``capacity_lines`` lines."""
        if capacity_lines <= 0:
            return 0
        top = min(capacity_lines, len(self.counts) - 1)
        return int(self._cumulative_hits()[top])

    def miss_ratio(self, capacity_lines: int) -> float:
        """Miss ratio of a fully associative LRU cache of that many lines.

        An empty stream has no well-defined miss ratio and yields NaN (a
        0.0 here would let an all-filtered-out stream masquerade as a
        perfect hit rate in campaign tables).
        """
        if self.total_references == 0:
            return float("nan")
        return 1.0 - self.hits(capacity_lines) / self.total_references

    def miss_ratios(self, capacities_lines: list[int] | np.ndarray) -> np.ndarray:
        """Vector of miss ratios for several capacities (in lines).

        NaN for every capacity when the stream is empty, matching
        :meth:`miss_ratio`.
        """
        if self.total_references == 0:
            return np.full(len(capacities_lines), np.nan)
        cumulative = self._cumulative_hits()
        caps = np.clip(np.asarray(capacities_lines), 0, len(self.counts) - 1)
        return 1.0 - cumulative[caps] / self.total_references


# -- vectorized distance machinery -------------------------------------------


def _stable_order(values: np.ndarray) -> np.ndarray:
    """Indices that stable-sort ``values`` (ascending).

    When the value range permits, the sort runs on packed
    ``value * n + index`` keys — a single ``np.sort`` over int64, which is
    several times faster than ``np.argsort(kind="stable")``.
    """
    n = len(values)
    if n <= 1:
        return np.arange(n, dtype=np.int64)
    bits = (n - 1).bit_length() + 1
    values = np.asarray(values, dtype=np.int64)
    if values[0] >= 0 and int(values.max()) < (1 << (62 - bits)):
        # values[0] >= 0 is a cheap proxy; verify with the true minimum
        # only when it passes (sorted/grouped inputs make it usually right).
        if int(values.min()) >= 0:
            keys = (values << bits) | np.arange(n, dtype=np.int64)
            keys.sort()
            return keys & ((1 << bits) - 1)
    return np.argsort(values, kind="stable")


def _prev_occurrence(
    values: np.ndarray, epochs: np.ndarray | None = None
) -> np.ndarray:
    """Index of the previous element with the same value, else −1.

    With ``epochs`` (non-decreasing within each value's subsequence), a
    previous occurrence from an earlier epoch is treated as absent —
    modelling a purge between the two references.
    """
    n = len(values)
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = _stable_order(values)
    ordered = values[order]
    same = np.empty(n, dtype=bool)
    same[0] = False
    np.equal(ordered[1:], ordered[:-1], out=same[1:])
    hit = np.flatnonzero(same)
    prev[order[hit]] = order[hit - 1]
    if epochs is not None:
        stale = epochs[np.maximum(prev, 0)] != epochs
        stale &= prev >= 0
        prev[stale] = -1
    return prev


def _count_left_greater(p: np.ndarray) -> np.ndarray:
    """``counts[t] = #{v < t : p[v] > p[t]}`` for values ≥ −2.

    Bottom-up blocked merge with the running count packed into the low
    bits of the sort key, so each level is one in-place block sort plus a
    boolean-marker prefix sum — no per-level scatter.  Ties occur only at
    −1/−2 (previous-occurrence arrays are injective elsewhere) and never
    contribute to a strict *greater* count, so the deterministic index
    tie-break is harmless.
    """
    n = len(p)
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    bits = (n - 1).bit_length()
    m = 1 << bits
    if 3 * bits + 2 > 63:
        return _count_left_greater_wide(p)
    # key = (value + 2) << 2b  |  index << b  |  running count
    keys = np.zeros(m, dtype=np.int64)
    keys[:n] = (np.asarray(p, dtype=np.int64) + 2) << (2 * bits)
    keys += np.arange(m, dtype=np.int64) << bits

    if m >= _BRUTE:
        block = (keys >> (2 * bits)).reshape(-1, _BRUTE)
        greater_prefix = (block[:, :, None] > block[:, None, :]).cumsum(axis=1)
        j = np.arange(_BRUTE)
        within = np.where(j > 0, greater_prefix[:, j - 1, j], 0)
        keys += within.reshape(-1)
        half = _BRUTE
    else:
        half = 1

    left_prefix = np.empty(m, dtype=np.int64)
    index_lane = np.int64((m - 1) << bits)
    while half < m:
        wide = 2 * half
        keys.reshape(-1, wide).sort(axis=1)
        on_right = keys & np.int64(half << bits)  # index bit `half`: 0 or set
        np.cumsum(on_right == 0, out=left_prefix)
        base = np.repeat(
            np.concatenate([[np.int64(0)], left_prefix[wide - 1 :: wide][:-1]]), wide
        )
        # Right-half elements gain (left-half elements above them in the
        # block) = half − (left elements at or below them).
        np.subtract(base, left_prefix, out=base)
        base += half
        base[on_right == 0] = 0
        keys += base
        half = wide

    counts = np.empty(n, dtype=np.int64)
    position = (keys & index_lane) >> bits
    keep = position < n
    counts[position[keep]] = keys[keep] & np.int64(m - 1)
    return counts


def _count_left_greater_wide(p: np.ndarray) -> np.ndarray:
    """Fallback for streams too long to pack value, index and count into
    one int64 key (beyond ~2²⁰ elements): same blocked merge, with the
    per-level counts scattered instead of carried."""
    n = len(p)
    counts = np.zeros(n, dtype=np.int64)
    bits = (n - 1).bit_length()
    m = 1 << bits
    keys = np.zeros(m, dtype=np.int64)
    keys[:n] = (np.asarray(p, dtype=np.int64) + 2) << bits
    keys += np.arange(m, dtype=np.int64)
    index_lane = np.int64(m - 1)

    if m >= _BRUTE:
        block = (keys >> bits).reshape(-1, _BRUTE)
        greater_prefix = (block[:, :, None] > block[:, None, :]).cumsum(axis=1)
        j = np.arange(_BRUTE)
        within = np.where(j > 0, greater_prefix[:, j - 1, j], 0)
        counts += within.reshape(-1)[:n]
        half = _BRUTE
    else:
        half = 1

    left_prefix = np.empty(m, dtype=np.int64)
    while half < m:
        wide = 2 * half
        keys.reshape(-1, wide).sort(axis=1)
        position = keys & index_lane
        on_right = (position & half) != 0
        np.cumsum(~on_right, out=left_prefix)
        base = np.repeat(
            np.concatenate([[np.int64(0)], left_prefix[wide - 1 :: wide][:-1]]), wide
        )
        valid = on_right & (position < n)
        counts[position[valid]] += half - (left_prefix[valid] - base[valid])
        half = wide
    return counts


def _stack_distances_ordered(
    values: np.ndarray, epochs: np.ndarray | None = None
) -> np.ndarray:
    """Per-element LRU stack distances of an ordered stream.

    ``values`` may be a concatenation of per-set substreams (each in time
    order; a value must always map to the same substream).  ``epochs``,
    non-decreasing within each substream, marks purge generations: a reuse
    across an epoch boundary is cold.  Consecutive repeats have distance
    1; cold references get :data:`COLD_DISTANCE`.
    """
    n = len(values)
    out = np.ones(n, dtype=np.int64)
    if n == 0:
        return out
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    if epochs is not None:
        keep[1:] |= epochs[1:] != epochs[:-1]
    deduped = values[keep]
    prev = _prev_occurrence(deduped, epochs[keep] if epochs is not None else None)
    cold = prev < 0
    distances = np.arange(len(deduped), dtype=np.int64) - prev
    distances -= _count_left_greater(prev)
    distances[cold] = COLD_DISTANCE
    out[keep] = distances
    return out


def _epochs_from_resets(n: int, resets: np.ndarray | None) -> np.ndarray | None:
    """Per-element epoch numbers from sorted reset indices (or None)."""
    if resets is None or not len(resets):
        return None
    interior = np.asarray(resets, dtype=np.int64)
    interior = np.unique(interior[(interior > 0) & (interior < n)])
    if not len(interior):
        return None
    lengths = np.diff(np.concatenate([[0], interior, [n]]))
    return np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)


def set_stack_distances(
    lines: np.ndarray,
    num_sets: int = 1,
    resets: np.ndarray | None = None,
) -> np.ndarray:
    """Per-reference LRU stack distances within each line's set.

    Element *t* of the result is the stack distance of ``lines[t]`` in the
    LRU stack of its set (``lines[t] & (num_sets - 1)``), or
    :data:`COLD_DISTANCE` for a first touch.  A reference hits in a
    ``num_sets × W`` LRU demand cache iff its distance is ≤ W — the same
    inclusion-property reading the profile-based sweeps use, kept aligned
    with the stream instead of histogrammed.

    Args:
        lines: int64 memory-line stream (e.g. ``trace.compiled(16).lines``).
        num_sets: positive power-of-two set count.
        resets: optional sorted indices at which every set's stack is
            purged before the reference at that index.

    Returns:
        int64 array of distances, aligned with ``lines``.

    Raises:
        ValueError: if ``num_sets`` is not a positive power of two.
    """
    if num_sets <= 0 or num_sets & (num_sets - 1):
        raise ValueError(f"num_sets must be a positive power of two, got {num_sets}")
    lines = np.asarray(lines, dtype=np.int64)
    n = len(lines)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    epochs = _epochs_from_resets(n, resets)
    if num_sets == 1:
        return _stack_distances_ordered(lines, epochs)
    order = _stable_order(lines & (num_sets - 1))
    ordered = _stack_distances_ordered(
        lines[order], epochs[order] if epochs is not None else None
    )
    out = np.empty(n, dtype=np.int64)
    out[order] = ordered
    return out


def lru_stack_distances(
    line_stream: np.ndarray, resets: np.ndarray | None = None
) -> StackDistanceProfile:
    """Stack-distance profile of a stream of memory line numbers.

    Args:
        line_stream: integer array; element *t* is the line referenced at
            time *t*.
        resets: optional sorted indices at which the LRU stack is purged
            *before* the reference at that index is processed.  This models
            the paper's task-switch purges: since every cache size purges at
            the same instant, the inclusion property — and hence the
            one-pass sweep — survives.

    Returns:
        The :class:`StackDistanceProfile` of the stream.
    """
    lines = np.asarray(line_stream, dtype=np.int64)
    total = len(lines)
    if total == 0:
        return StackDistanceProfile(np.zeros(1, dtype=np.int64), 0, 0)
    distances = set_stack_distances(lines, 1, resets)
    cold_total = int(np.count_nonzero(distances == COLD_DISTANCE))
    finite = distances[distances != COLD_DISTANCE]
    counts = np.bincount(finite, minlength=2).astype(np.int64, copy=False)
    return StackDistanceProfile(counts, cold_total, total)


# -- reference implementation (kept for equivalence tests) --------------------


def _distances_fenwick(stream: np.ndarray) -> tuple[np.ndarray, int]:
    """Stack distances of the non-cold references of ``stream``.

    The original per-reference pass: a Fenwick (binary indexed) tree marks,
    for every line, the position of its most recent reference; the number
    of marks strictly between a line's previous and current positions is
    the number of distinct lines touched in between.  Superseded by the
    array passes above; kept as the independently-derived reference the
    equivalence tests compare against.

    Returns ``(distances, cold_count)`` with 1-based stack positions.
    """
    n = len(stream)
    tree = [0] * (n + 1)
    last_seen: dict[int, int] = {}
    distances: list[int] = []
    cold = 0
    append = distances.append

    for t, line in enumerate(stream.tolist()):
        prev = last_seen.get(line)
        if prev is None:
            cold += 1
        else:
            # marks in [prev+1, t-1]  (positions are 1-based in the tree)
            distinct_between = _prefix(tree, t) - _prefix(tree, prev + 1)
            append(distinct_between + 1)
            _update(tree, prev + 1, -1)
        _update(tree, t + 1, 1)
        last_seen[line] = t

    return np.asarray(distances, dtype=np.int64), cold


def _prefix(tree: list[int], index: int) -> int:
    total = 0
    while index > 0:
        total += tree[index]
        index -= index & -index
    return total


def _update(tree: list[int], index: int, delta: int) -> None:
    size = len(tree)
    while index < size:
        tree[index] += delta
        index += index & -index


def lru_miss_ratio_curve(
    trace: Trace,
    capacities: list[int] | np.ndarray,
    line_size: int = 16,
    kinds: list[AccessKind] | None = None,
    purge_interval: int | None = None,
) -> np.ndarray:
    """Miss ratios of fully associative LRU caches, one pass over ``trace``.

    This reproduces the paper's Table 1 configuration exactly: fully
    associative, LRU replacement, demand fetch, no task-switch purges, copy
    back with fetch on write (the write policy does not change which
    references miss, since fetch-on-write allocates like a read).

    Args:
        trace: the reference stream.
        capacities: cache sizes in **bytes**, each a multiple of
            ``line_size``.
        line_size: cache line size in bytes (paper standard: 16).
        kinds: restrict to these access kinds first (e.g. only IFETCH for an
            instruction cache fed by a split stream).
        purge_interval: purge (reset) the cache every this many *trace*
            references — counted over the full trace even when ``kinds``
            filters the stream, so a split cache's purge clock matches the
            unified experiment's.

    Returns:
        Array of miss ratios aligned with ``capacities`` (NaN throughout if
        the filtered stream is empty — see
        :meth:`StackDistanceProfile.miss_ratios`).

    Raises:
        ValueError: if any capacity is not a positive multiple of the line
            size, or ``purge_interval`` is not positive.
    """
    capacities = np.asarray(capacities, dtype=np.int64)
    if len(capacities) and (
        (capacities <= 0).any() or (capacities % line_size != 0).any()
    ):
        raise ValueError(
            f"capacities must be positive multiples of line_size={line_size}"
        )
    if purge_interval is not None and purge_interval <= 0:
        raise ValueError(f"purge_interval must be positive, got {purge_interval}")
    # The compiled view memoizes the expanded (line, kind, position) arrays
    # per line size — and the finished profile per (kinds, purge) — so
    # repeated sweeps over one trace do the distance pass only once.
    compiled = trace.compiled(line_size)
    kind_key = None if kinds is None else tuple(sorted(int(k) for k in kinds))
    profile = compiled.memo(
        ("stack-profile", kind_key, purge_interval),
        lambda: _curve_profile(compiled, kinds, purge_interval),
    )
    return profile.miss_ratios(capacities // line_size)


def _curve_profile(compiled, kinds, purge_interval) -> StackDistanceProfile:
    if kinds is not None:
        mask = np.isin(compiled.kinds, [int(k) for k in kinds])
        lines = compiled.lines[mask]
        # Positions are original trace indices, fixed *before* line
        # expansion so the purge clock counts trace references even when
        # line-straddling accesses expand into several line references.
        positions = compiled.positions[mask]
    else:
        lines = compiled.lines
        positions = compiled.positions
    resets = None
    if purge_interval is not None and len(positions):
        # Reset before the first reference of each new purge epoch.
        epoch = positions // purge_interval
        resets = np.nonzero(np.diff(epoch) > 0)[0] + 1
    return lru_stack_distances(lines, resets)
