"""LRU stack-distance analysis (Mattson's one-pass algorithm).

The paper's Table 1 sweeps a fully associative LRU cache across twelve
sizes for 57 traces.  The classic way to run such a sweep — then and now —
is the stack algorithm of Mattson, Gecsei, Slutz and Traiger (1970): because
LRU has the *inclusion property* (the content of a C-line cache is always a
subset of a (C+1)-line cache), one pass over the trace computing each
reference's **stack distance** (its position in the LRU stack, counted from
the top) yields the miss ratio for *every* cache size at once: a reference
hits in a cache of C lines iff its stack distance is at most C.

The implementation computes distances with a Fenwick tree over reference
positions, after first removing consecutive repeats (which have stack
distance 1 and carry no other information); with real program locality this
shrinks the stream severalfold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trace.record import AccessKind
from ..trace.stream import Trace

__all__ = ["StackDistanceProfile", "lru_stack_distances", "lru_miss_ratio_curve"]


@dataclass(frozen=True, slots=True)
class StackDistanceProfile:
    """Distribution of LRU stack distances for one line-reference stream.

    Attributes:
        counts: ``counts[d]`` is the number of references with stack
            distance ``d`` (1-based; index 0 is unused and zero).
        cold_misses: first-time references (infinite distance — they miss
            in every finite cache).
        total_references: all references, including consecutive repeats.
    """

    counts: np.ndarray
    cold_misses: int
    total_references: int
    #: Lazily computed cumulative hit counts (``_cumulative[c]`` = hits in a
    #: c-line cache).  Every campaign queries the same profile once per
    #: capacity grid per trace, so the cumsum is done once and reused.
    _cumulative: np.ndarray | None = field(default=None, repr=False, compare=False)

    def _cumulative_hits(self) -> np.ndarray:
        cumulative = self._cumulative
        if cumulative is None:
            cumulative = np.concatenate([[0], np.cumsum(self.counts[1:])])
            object.__setattr__(self, "_cumulative", cumulative)  # frozen: memo only
        return cumulative

    def hits(self, capacity_lines: int) -> int:
        """References that hit in a fully associative LRU cache of
        ``capacity_lines`` lines."""
        if capacity_lines <= 0:
            return 0
        top = min(capacity_lines, len(self.counts) - 1)
        return int(self._cumulative_hits()[top])

    def miss_ratio(self, capacity_lines: int) -> float:
        """Miss ratio of a fully associative LRU cache of that many lines."""
        if self.total_references == 0:
            return 0.0
        return 1.0 - self.hits(capacity_lines) / self.total_references

    def miss_ratios(self, capacities_lines: list[int] | np.ndarray) -> np.ndarray:
        """Vector of miss ratios for several capacities (in lines)."""
        if self.total_references == 0:
            return np.zeros(len(capacities_lines))
        cumulative = self._cumulative_hits()
        caps = np.clip(np.asarray(capacities_lines), 0, len(self.counts) - 1)
        return 1.0 - cumulative[caps] / self.total_references


def lru_stack_distances(
    line_stream: np.ndarray, resets: np.ndarray | None = None
) -> StackDistanceProfile:
    """Stack-distance profile of a stream of memory line numbers.

    Args:
        line_stream: integer array; element *t* is the line referenced at
            time *t*.
        resets: optional sorted indices at which the LRU stack is purged
            *before* the reference at that index is processed.  This models
            the paper's task-switch purges: since every cache size purges at
            the same instant, the inclusion property — and hence the
            one-pass sweep — survives.

    Returns:
        The :class:`StackDistanceProfile` of the stream.
    """
    lines = np.asarray(line_stream)
    total = len(lines)
    if total == 0:
        return StackDistanceProfile(np.zeros(1, dtype=np.int64), 0, 0)

    boundaries = [0, total]
    if resets is not None and len(resets):
        interior = np.asarray(resets, dtype=np.int64)
        interior = interior[(interior > 0) & (interior < total)]
        boundaries = [0, *np.unique(interior).tolist(), total]

    # Collect per-segment distance arrays and merge once at the end — a
    # heavily purged stream has many segments, and growing the histogram
    # with np.concatenate per segment was O(segments x max_distance).
    segment_distances: list[np.ndarray] = []
    repeat_total = 0
    cold_total = 0
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        segment = lines[start:stop]
        # Consecutive repeats have stack distance exactly 1; strip them.
        keep = np.empty(len(segment), dtype=bool)
        keep[0] = True
        np.not_equal(segment[1:], segment[:-1], out=keep[1:])
        deduped = segment[keep]
        repeat_total += len(segment) - len(deduped)

        distances, cold = _distances_fenwick(deduped)
        cold_total += cold
        if len(distances):
            segment_distances.append(distances)

    merged = (
        np.concatenate(segment_distances)
        if segment_distances
        else np.empty(0, dtype=np.int64)
    )
    all_counts = np.bincount(merged, minlength=2).astype(np.int64, copy=False)
    all_counts[1] += repeat_total
    return StackDistanceProfile(all_counts, cold_total, total)


def _distances_fenwick(stream: np.ndarray) -> tuple[np.ndarray, int]:
    """Stack distances of the non-cold references of ``stream``.

    Returns ``(distances, cold_count)`` where distances are 1-based stack
    positions.  Uses a Fenwick (binary indexed) tree that marks, for every
    line, the position of its most recent reference; the number of marks
    strictly between a line's previous and current positions is the number
    of distinct lines touched in between.
    """
    n = len(stream)
    tree = [0] * (n + 1)
    last_seen: dict[int, int] = {}
    distances: list[int] = []
    cold = 0
    append = distances.append

    for t, line in enumerate(stream.tolist()):
        prev = last_seen.get(line)
        if prev is None:
            cold += 1
        else:
            # marks in [prev+1, t-1]  (positions are 1-based in the tree)
            distinct_between = _prefix(tree, t) - _prefix(tree, prev + 1)
            append(distinct_between + 1)
            _update(tree, prev + 1, -1)
        _update(tree, t + 1, 1)
        last_seen[line] = t

    return np.asarray(distances, dtype=np.int64), cold


def _prefix(tree: list[int], index: int) -> int:
    total = 0
    while index > 0:
        total += tree[index]
        index -= index & -index
    return total


def _update(tree: list[int], index: int, delta: int) -> None:
    size = len(tree)
    while index < size:
        tree[index] += delta
        index += index & -index


def lru_miss_ratio_curve(
    trace: Trace,
    capacities: list[int] | np.ndarray,
    line_size: int = 16,
    kinds: list[AccessKind] | None = None,
    purge_interval: int | None = None,
) -> np.ndarray:
    """Miss ratios of fully associative LRU caches, one pass over ``trace``.

    This reproduces the paper's Table 1 configuration exactly: fully
    associative, LRU replacement, demand fetch, no task-switch purges, copy
    back with fetch on write (the write policy does not change which
    references miss, since fetch-on-write allocates like a read).

    Args:
        trace: the reference stream.
        capacities: cache sizes in **bytes**, each a multiple of
            ``line_size``.
        line_size: cache line size in bytes (paper standard: 16).
        kinds: restrict to these access kinds first (e.g. only IFETCH for an
            instruction cache fed by a split stream).
        purge_interval: purge (reset) the cache every this many *trace*
            references — counted over the full trace even when ``kinds``
            filters the stream, so a split cache's purge clock matches the
            unified experiment's.

    Returns:
        Array of miss ratios aligned with ``capacities``.

    Raises:
        ValueError: if any capacity is not a positive multiple of the line
            size, or ``purge_interval`` is not positive.
    """
    capacities = np.asarray(capacities, dtype=np.int64)
    if len(capacities) and (
        (capacities <= 0).any() or (capacities % line_size != 0).any()
    ):
        raise ValueError(
            f"capacities must be positive multiples of line_size={line_size}"
        )
    if purge_interval is not None and purge_interval <= 0:
        raise ValueError(f"purge_interval must be positive, got {purge_interval}")
    # The compiled view memoizes the expanded (line, kind, position) arrays
    # per line size, so repeated sweeps over one trace share the expansion.
    compiled = trace.compiled(line_size)
    if kinds is not None:
        mask = np.isin(compiled.kinds, [int(k) for k in kinds])
        lines = compiled.lines[mask]
        # Positions are original trace indices, fixed *before* line
        # expansion so the purge clock counts trace references even when
        # line-straddling accesses expand into several line references.
        positions = compiled.positions[mask]
    else:
        lines = compiled.lines
        positions = compiled.positions
    resets = None
    if purge_interval is not None and len(positions):
        # Reset before the first reference of each new purge epoch.
        epoch = positions // purge_interval
        resets = np.nonzero(np.diff(epoch) > 0)[0] + 1
    profile = lru_stack_distances(lines, resets)
    return profile.miss_ratios(capacities // line_size)


