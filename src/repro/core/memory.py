"""Main-memory timing and machine-performance estimation.

The paper's introduction frames cache choices as cost/performance questions
("a cache which achieves a 99% hit ratio may cost 80% more than one which
achieves 98% ... and may only boost overall CPU performance by 8%").  This
module provides the small analytic model needed to reason that way: a
memory/bus timing description and an effective-access-time / MIPS estimate
from cache statistics.  It also computes the **traffic ratio** the paper's
conclusion warns about ("The traffic ratio, however, may not be lower than
1.0 [Hil84] and that parameter needs to be carefully watched").
"""

from __future__ import annotations

from dataclasses import dataclass

from .stats import CacheStats

__all__ = ["MemoryTiming", "PerformanceModel", "traffic_ratio"]


@dataclass(frozen=True, slots=True)
class MemoryTiming:
    """Timing of the cache/memory pair, in CPU cycles.

    Args:
        cache_access_cycles: time of a cache hit.
        memory_latency_cycles: time to start a main-memory transfer.
        bus_bytes_per_cycle: bus transfer bandwidth.

    Raises:
        ValueError: for non-positive parameters.
    """

    cache_access_cycles: float = 1.0
    memory_latency_cycles: float = 10.0
    bus_bytes_per_cycle: float = 4.0

    def __post_init__(self) -> None:
        for name in ("cache_access_cycles", "memory_latency_cycles", "bus_bytes_per_cycle"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")

    def line_transfer_cycles(self, line_size: int) -> float:
        """Cycles to move one line (latency + line transfer)."""
        return self.memory_latency_cycles + line_size / self.bus_bytes_per_cycle


@dataclass(frozen=True, slots=True)
class PerformanceModel:
    """Effective-access-time machine model.

    Args:
        timing: memory-system timing.
        references_per_instruction: memory references per executed
            instruction; the paper's rule of thumb for the 370 and VAX is
            about 2 (Section 3.2).
        base_cpi: cycles per instruction excluding memory-reference stalls.
    """

    timing: MemoryTiming = MemoryTiming()
    references_per_instruction: float = 2.0
    base_cpi: float = 1.0

    def effective_access_cycles(self, miss_ratio: float, line_size: int) -> float:
        """Mean cycles per memory reference at the given miss ratio."""
        if not 0.0 <= miss_ratio <= 1.0:
            raise ValueError(f"miss_ratio must be in [0, 1], got {miss_ratio}")
        penalty = self.timing.line_transfer_cycles(line_size)
        return self.timing.cache_access_cycles + miss_ratio * penalty

    def cpi(self, miss_ratio: float, line_size: int) -> float:
        """Cycles per instruction at the given miss ratio."""
        stall = self.effective_access_cycles(miss_ratio, line_size) - (
            self.timing.cache_access_cycles
        )
        return self.base_cpi + self.references_per_instruction * stall

    def mips(self, miss_ratio: float, line_size: int, clock_mhz: float = 10.0) -> float:
        """Instruction rate in MIPS at the given clock.

        Raises:
            ValueError: for a non-positive clock.
        """
        if clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be positive, got {clock_mhz}")
        return clock_mhz / self.cpi(miss_ratio, line_size)

    def speedup(self, miss_ratio_a: float, miss_ratio_b: float, line_size: int) -> float:
        """Performance of design B relative to design A (>1 means B faster)."""
        return self.cpi(miss_ratio_a, line_size) / self.cpi(miss_ratio_b, line_size)


def traffic_ratio(stats: CacheStats, reference_bytes: int) -> float:
    """Memory traffic with the cache relative to traffic without it.

    Without a cache every reference goes to memory (``reference_bytes``
    total); with the cache, traffic is line fetches plus write-backs plus
    write-throughs.  [Hil84]'s point, echoed in the paper's conclusion, is
    that small-line caches can push this *above* 1.0.

    Raises:
        ValueError: if ``reference_bytes`` is not positive.
    """
    if reference_bytes <= 0:
        raise ValueError(f"reference_bytes must be positive, got {reference_bytes}")
    return stats.memory_traffic_bytes / reference_bytes
