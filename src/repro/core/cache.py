"""The cache engine: a set-associative cache with pluggable policies.

This is the simulator at the centre of the reproduction.  One
:class:`Cache` models a single cache array — unified, instruction or data;
the wrappers in :mod:`repro.core.organization` compose them into the
unified and split organizations the paper simulates.

Design notes
------------
Lines are tracked per set in an ``OrderedDict`` mapping the memory line
number to a small flag bitmask (dirty / data / prefetched / referenced).
The replacement policy (:mod:`repro.core.replacement`) reorders that dict;
for LRU every operation on the hot path is O(1).

The flag bits exist to support the paper's measurements directly:

* ``dirty`` — set by stores under copy-back; a pushed dirty line counts a
  write-back transfer (Table 3, Figures 8-10 traffic).
* ``data`` — set by any data read/write that touches the line; lets a
  *unified* cache report the "fraction of data pushes dirty" statistic of
  Table 3 without a split organization.
* ``prefetched``/``referenced`` — distinguish useful from useless
  prefetches (Section 3.5's accuracy discussion).
"""

from __future__ import annotations

from collections import OrderedDict

from ..trace.record import AccessKind, MemoryAccess
from .address import CacheGeometry
from .fetch import FetchPolicy
from .replacement import LRU, ReplacementPolicy, ReplacementPolicyFactory
from .stats import CacheStats
from .write import COPY_BACK, WritePolicy

__all__ = ["Cache", "FLAG_DIRTY", "FLAG_DATA", "FLAG_PREFETCHED", "FLAG_REFERENCED"]

FLAG_DIRTY = 1
FLAG_DATA = 2
FLAG_PREFETCHED = 4
FLAG_REFERENCED = 8

_WRITE = int(AccessKind.WRITE)
_IFETCH = int(AccessKind.IFETCH)
_READ = int(AccessKind.READ)


class Cache:
    """A single cache array.

    Args:
        geometry: capacity / line size / associativity.
        replacement: factory of per-set replacement policies; defaults to
            LRU, the paper's policy.
        write_policy: write strategy; defaults to copy-back with fetch on
            write, the paper's policy.
        fetch_policy: demand or sequential prefetch.
        stats: optional externally owned counter object (used by the split
            organization to share a line-size-consistent aggregate).
        miss_path: optional miss-path chain (see
            :mod:`repro.core.misspath`); consulted on allocating misses
            (``service_miss``) and replacements (``on_evict``).  Normally
            wired by the organization, not passed directly.

    The hot-path entry point is :meth:`access_raw`; :meth:`access` is the
    typed convenience wrapper.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement: ReplacementPolicyFactory | None = None,
        write_policy: WritePolicy = COPY_BACK,
        fetch_policy: FetchPolicy = FetchPolicy.DEMAND,
        stats: CacheStats | None = None,
        miss_path=None,
    ) -> None:
        self.geometry = geometry
        self.write_policy = write_policy
        self.fetch_policy = fetch_policy
        self.stats = stats if stats is not None else CacheStats(line_size=geometry.line_size)
        self.stats.line_size = geometry.line_size
        # Int-indexed per-class counter table; valid for the stats object's
        # lifetime because resets clear counters in place.
        self._kind_counts = self.stats.counts_by_kind()
        make_policy = replacement or LRU
        self._replacement_factory = make_policy
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]
        self._policies: list[ReplacementPolicy] = [
            make_policy() for _ in range(geometry.num_sets)
        ]
        # Hot-path constants.
        self._offset_bits = geometry.offset_bits
        self._set_mask = geometry.num_sets - 1
        self._ways = geometry.ways
        self._copy_back = write_policy.is_copy_back
        self._allocate_on_write = write_policy.allocate_on_write
        self._combine_bytes = write_policy.combining_bytes
        self._last_write_word = -1
        self._prefetching = fetch_policy.prefetches
        self._prefetch_always = fetch_policy is FetchPolicy.PREFETCH_ALWAYS
        self.miss_path = miss_path

    # -- public API ----------------------------------------------------------

    def access(self, access: MemoryAccess) -> bool:
        """Apply one reference; returns True iff (the first line) hit."""
        return self.access_raw(int(access.kind), access.address, access.size)

    def access_raw(self, kind: int, address: int, size: int) -> bool:
        """Apply one reference given raw fields (hot path).

        A reference that straddles line boundaries probes every touched
        line and is counted as one reference per line (see DESIGN.md);
        the return value reports the first line's outcome.

        Returns:
            True iff the first touched line was resident.
        """
        first_line = address >> self._offset_bits
        last_line = (address + size - 1) >> self._offset_bits
        hit = self._reference_line(kind, first_line, size)
        for line in range(first_line + 1, last_line + 1):
            self._reference_line(kind, line, size)
        if kind == _WRITE and not self._copy_back:
            self._write_through(address, size)
        return hit

    def purge(self) -> None:
        """Invalidate the whole cache, pushing every line (task switch).

        Dirty lines are counted as write-backs, exactly as the paper's
        multiprogramming simulations do when "the cache is purged to
        simulate multiprogramming".
        """
        stats = self.stats
        for lines, policy in zip(self._sets, self._policies):
            for tag, flags in lines.items():
                stats.purge_pushes += 1
                self._count_push(flags)
                policy.on_evict(tag)
            lines.clear()
        stats.purges += 1
        self._last_write_word = -1  # a task switch drains the write buffer

    def reset_statistics(self) -> None:
        """Zero the counters without touching cache contents.

        Supports warm-start measurement: replay a warmup prefix, reset,
        then measure — removing the cold-start bias the paper's short
        traces suffer from (Section 1.1's caveat 1).

        The counters are zeroed *in place*: an externally shared ``stats``
        object (see the constructor) keeps observing this cache.  The
        write-combining word is also forgotten so the first measured
        write-through is never miscounted as combined with a warmup store.
        """
        self.stats.clear()
        self._last_write_word = -1

    def contains(self, address: int) -> bool:
        """True iff the line holding ``address`` is resident."""
        line = address >> self._offset_bits
        return line in self._sets[line & self._set_mask]

    def resident_lines(self) -> list[int]:
        """Memory line numbers currently resident (set order)."""
        return [tag for lines in self._sets for tag in lines]

    def __len__(self) -> int:
        """Number of resident lines."""
        return sum(len(lines) for lines in self._sets)

    @property
    def capacity_lines(self) -> int:
        """Total line slots."""
        return self.geometry.num_lines

    @property
    def replacement_factory(self) -> ReplacementPolicyFactory:
        """The factory this cache builds per-set policies from.

        Exposed so the fast-path selector (:mod:`repro.core.kernels`) can
        recognize a pure-LRU cache without probing per-set policy objects.
        """
        return self._replacement_factory

    def line_flags(self, line: int) -> int | None:
        """Flag bitmask for a resident line, or None (testing/introspection)."""
        return self._sets[line & self._set_mask].get(line)

    def mark_dirty(self, address: int) -> bool:
        """Set the dirty (and data) flags on a resident line.

        Used by an inclusive second level absorbing a write-back from
        above.  Returns True iff the line was resident.
        """
        line = address >> self._offset_bits
        lines = self._sets[line & self._set_mask]
        flags = lines.get(line)
        if flags is None:
            return False
        lines[line] = flags | FLAG_DIRTY | FLAG_DATA
        return True

    def fill_line(self, address: int, flags: int = 0) -> None:
        """Insert a line without touching reference/fetch counters.

        Miss-path plumbing (inclusion repair in a second level).  Any
        eviction the insert causes is accounted normally.
        """
        line = address >> self._offset_bits
        lines = self._sets[line & self._set_mask]
        if line in lines:
            lines[line] |= flags
            return
        self._insert(lines, self._policies[line & self._set_mask], line, flags)

    def invalidate(self, address: int) -> int | None:
        """Drop a resident line (back-invalidation from a lower level).

        The line counts as a replacement push (dirty state included — its
        write-back obligation falls to this cache since the lower level is
        discarding its copy).  Returns the dropped flags, or None if the
        line was not resident.
        """
        line = address >> self._offset_bits
        lines = self._sets[line & self._set_mask]
        flags = lines.pop(line, None)
        if flags is None:
            return None
        self._policies[line & self._set_mask].on_evict(line)
        self.stats.replacement_pushes += 1
        self._count_push(flags)
        return flags

    # -- internals -----------------------------------------------------------

    def _reference_line(self, kind: int, line: int, size: int) -> bool:
        stats = self.stats
        counts = self._kind_counts[kind]
        counts.references += 1

        is_write = kind == _WRITE
        flag_update = 0
        if is_write or kind == _READ:
            flag_update = FLAG_DATA
        if is_write and self._copy_back:
            flag_update |= FLAG_DIRTY

        lines = self._sets[line & self._set_mask]
        policy = self._policies[line & self._set_mask]
        flags = lines.get(line)
        first_touch = False
        if flags is not None:
            if flags & FLAG_PREFETCHED and not flags & FLAG_REFERENCED:
                stats.useful_prefetches += 1
                first_touch = True
            lines[line] = flags | flag_update | FLAG_REFERENCED
            policy.on_hit(lines, line)
            hit = True
        else:
            counts.misses += 1
            first_touch = True
            if is_write and not self._allocate_on_write:
                pass  # no-allocate: the store bypasses the cache entirely
            else:
                # With a miss path the fetch may be serviced by a chain
                # component rather than memory; demand_fetches counts the
                # fill into *this* cache either way (memory-side traffic
                # lives in the last component's stats block).
                stats.demand_fetches += 1
                extra = 0
                if self.miss_path is not None:
                    extra = self.miss_path.service_miss(kind, line)
                self._insert(
                    lines, policy, line, flag_update | FLAG_REFERENCED | extra
                )
            hit = False

        if self._prefetching and (self._prefetch_always or first_touch):
            self._prefetch(line + 1)
        return hit

    def _write_through(self, address: int, size: int) -> None:
        """Account one store's trip to memory (write-through policy).

        With a combining buffer, consecutive stores landing in the same
        aligned ``combining_bytes`` word share one memory transaction —
        Section 3.3's adjacent-short-write exception.
        """
        stats = self.stats
        stats.write_through_bytes += size
        if not self._combine_bytes:
            stats.write_throughs += 1
            return
        first_word = address // self._combine_bytes
        last_word = (address + size - 1) // self._combine_bytes
        for word in range(first_word, last_word + 1):
            if word == self._last_write_word:
                stats.combined_writes += 1
            else:
                stats.write_throughs += 1
                self._last_write_word = word

    def _prefetch(self, line: int) -> None:
        lines = self._sets[line & self._set_mask]
        if line in lines:
            return
        self.stats.prefetches += 1
        self._insert(lines, self._policies[line & self._set_mask], line, FLAG_PREFETCHED)

    def _insert(
        self,
        lines: OrderedDict[int, int],
        policy: ReplacementPolicy,
        line: int,
        flags: int,
    ) -> None:
        if len(lines) >= self._ways:
            victim = policy.choose_victim(lines)
            victim_flags = lines.pop(victim)
            policy.on_evict(victim)
            self.stats.replacement_pushes += 1
            # A miss-path component may take custody of the victim (victim
            # cache); the dirty/data push accounting then moves with it.
            if self.miss_path is None or not self.miss_path.on_evict(
                victim, victim_flags
            ):
                self._count_push(victim_flags)
        lines[line] = flags
        policy.on_insert(lines, line)

    def _count_push(self, flags: int) -> None:
        stats = self.stats
        if flags & FLAG_DATA:
            stats.data_pushes += 1
            if flags & FLAG_DIRTY:
                stats.dirty_data_pushes += 1
        if flags & FLAG_DIRTY:
            stats.dirty_pushes += 1
