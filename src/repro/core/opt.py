"""Belady's MIN: the offline-optimal replacement policy.

MIN evicts the resident line whose next use lies farthest in the future;
no realizable policy can miss less.  It is the classic lower-bound
comparator for replacement studies (Mattson et al. 1970 analyse it beside
LRU), and the ablation benchmarks use it to show how close the paper's
LRU standard sits to optimal on these workloads.

MIN needs the whole future, so it is implemented as an offline pass over a
materialized trace rather than as a
:class:`~repro.core.replacement.ReplacementPolicy` plug-in.  The next-use
precompute is one stable sort over the stream (vectorized); only the
eviction decisions themselves remain a per-reference heap loop.  Set
associativity is supported by running that loop per set over the
set-partitioned stream — the sets are independent, so the sum of per-set
MIN misses is the set-associative optimum.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..trace.record import AccessKind
from ..trace.stream import Trace
from .stackdist import _stable_order

__all__ = ["belady_min_misses", "belady_miss_ratio"]

_NEVER = np.iinfo(np.int64).max


def _next_use(lines: np.ndarray) -> np.ndarray:
    """``next_use[t]`` = index of the next reference to ``lines[t]``, else
    a never-again sentinel.  One stable sort: equal lines land adjacent in
    time order, so each element's successor within its run is its next use.
    """
    n = len(lines)
    next_use = np.full(n, _NEVER, dtype=np.int64)
    if n < 2:
        return next_use
    order = _stable_order(lines)
    ordered = lines[order]
    same = np.flatnonzero(ordered[1:] == ordered[:-1])
    next_use[order[same]] = order[same + 1]
    return next_use


def belady_min_misses(
    line_stream: np.ndarray, capacity_lines: int, num_sets: int = 1
) -> int:
    """Misses of an optimally managed cache (demand fetch).

    Args:
        line_stream: integer array of memory line numbers, in reference
            order.
        capacity_lines: total cache capacity in lines.
        num_sets: number of sets (power of two; 1 = fully associative).
            A line maps to set ``line & (num_sets - 1)`` — the same
            bit-selection mapping as :class:`~repro.core.cache.Cache` —
            and each set manages its ``capacity_lines / num_sets`` ways
            optimally and independently.

    Returns:
        The number of misses under Belady's MIN.

    Raises:
        ValueError: if ``capacity_lines`` is not positive, ``num_sets`` is
            not a positive power of two, or the sets do not divide the
            capacity evenly.
    """
    if capacity_lines <= 0:
        raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
    if num_sets <= 0 or num_sets & (num_sets - 1):
        raise ValueError(f"num_sets must be a positive power of two, got {num_sets}")
    if capacity_lines % num_sets:
        raise ValueError(
            f"num_sets {num_sets} does not divide {capacity_lines} capacity lines"
        )
    lines = np.asarray(line_stream, dtype=np.int64)
    if len(lines) == 0:
        return 0
    ways = capacity_lines // num_sets
    if num_sets == 1:
        return _min_misses_one_set(lines, _next_use(lines), ways)
    order = _stable_order(lines & (num_sets - 1))
    grouped = lines[order]
    boundaries = np.flatnonzero(np.diff(grouped & (num_sets - 1))) + 1
    misses = 0
    for sub in np.split(grouped, boundaries):
        misses += _min_misses_one_set(sub, _next_use(sub), ways)
    return misses


def _min_misses_one_set(stream: np.ndarray, next_use: np.ndarray, ways: int) -> int:
    resident: dict[int, int] = {}  # line -> its next-use time
    # Max-heap of (-next_use, line) with lazy invalidation.
    heap: list[tuple[int, int]] = []
    misses = 0
    future = next_use.tolist()
    for t, line in enumerate(stream.tolist()):
        when = future[t]
        if line in resident:
            resident[line] = when
            heapq.heappush(heap, (-when, line))
            continue
        misses += 1
        if len(resident) >= ways:
            # Evict the resident line used farthest in the future.
            while True:
                negative_when, victim = heapq.heappop(heap)
                if resident.get(victim) == -negative_when:
                    del resident[victim]
                    break
        resident[line] = when
        heapq.heappush(heap, (-when, line))
    return misses


def belady_miss_ratio(
    trace: Trace,
    capacity: int,
    line_size: int = 16,
    kinds: list[AccessKind] | None = None,
    associativity: int | None = None,
) -> float:
    """Offline-optimal miss ratio for one cache size.

    Args:
        trace: the reference stream (straddling accesses use their first
            line; the synthetic workloads are aligned, so this matches the
            LRU sweeps).
        capacity: cache capacity in bytes (multiple of ``line_size``).
        line_size: line size in bytes.
        kinds: optional kind filter (as in
            :func:`repro.core.stackdist.lru_miss_ratio_curve`).
        associativity: ways per set (None = fully associative).  Must
            divide the capacity in lines into a power-of-two set count.

    Returns:
        The MIN miss ratio, or NaN for an empty (or fully filtered-out)
        stream — the same convention as
        :meth:`~repro.core.stackdist.StackDistanceProfile.miss_ratio`.

    Raises:
        ValueError: if the capacity is not a positive multiple of the line
            size, or the associativity does not yield a power-of-two set
            count.
    """
    if capacity <= 0 or capacity % line_size:
        raise ValueError(
            f"capacity must be a positive multiple of line_size={line_size}"
        )
    capacity_lines = capacity // line_size
    if associativity is None:
        num_sets = 1
    else:
        if associativity <= 0 or capacity_lines % associativity:
            raise ValueError(
                f"associativity {associativity} does not divide "
                f"{capacity_lines} capacity lines"
            )
        num_sets = capacity_lines // associativity
    if kinds is not None:
        mask = np.isin(trace.kinds, [int(k) for k in kinds])
        addresses = trace.addresses[mask]
    else:
        addresses = trace.addresses
    if len(addresses) == 0:
        return float("nan")
    lines = addresses // line_size
    misses = belady_min_misses(lines, capacity_lines, num_sets)
    return misses / len(lines)
