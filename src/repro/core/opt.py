"""Belady's MIN: the offline-optimal replacement policy.

MIN evicts the resident line whose next use lies farthest in the future;
no realizable policy can miss less.  It is the classic lower-bound
comparator for replacement studies (Mattson et al. 1970 analyse it beside
LRU), and the ablation benchmarks use it to show how close the paper's
LRU standard sits to optimal on these workloads.

MIN needs the whole future, so it is implemented as an offline pass over a
materialized trace rather than as a
:class:`~repro.core.replacement.ReplacementPolicy` plug-in.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..trace.record import AccessKind
from ..trace.stream import Trace

__all__ = ["belady_min_misses", "belady_miss_ratio"]


def belady_min_misses(line_stream: np.ndarray, capacity_lines: int) -> int:
    """Misses of an optimally managed fully associative cache.

    Args:
        line_stream: integer array of memory line numbers, in reference
            order.
        capacity_lines: cache capacity in lines.

    Returns:
        The number of misses under Belady's MIN (demand fetch).

    Raises:
        ValueError: if ``capacity_lines`` is not positive.
    """
    if capacity_lines <= 0:
        raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
    lines = np.asarray(line_stream)
    total = len(lines)
    if total == 0:
        return 0

    # next_use[t] = index of the next reference to lines[t], or +inf.
    next_use = np.full(total, np.iinfo(np.int64).max, dtype=np.int64)
    last_position: dict[int, int] = {}
    for t in range(total - 1, -1, -1):
        line = int(lines[t])
        if line in last_position:
            next_use[t] = last_position[line]
        last_position[line] = t

    resident: dict[int, int] = {}  # line -> its next-use time
    # Max-heap of (-next_use, line) with lazy invalidation.
    heap: list[tuple[int, int]] = []
    misses = 0
    stream = lines.tolist()
    future = next_use.tolist()
    for t, line in enumerate(stream):
        when = future[t]
        if line in resident:
            resident[line] = when
            heapq.heappush(heap, (-when, line))
            continue
        misses += 1
        if len(resident) >= capacity_lines:
            # Evict the resident line used farthest in the future.
            while True:
                negative_when, victim = heapq.heappop(heap)
                if resident.get(victim) == -negative_when:
                    del resident[victim]
                    break
        resident[line] = when
        heapq.heappush(heap, (-when, line))
    return misses


def belady_miss_ratio(
    trace: Trace,
    capacity: int,
    line_size: int = 16,
    kinds: list[AccessKind] | None = None,
) -> float:
    """Offline-optimal miss ratio for one cache size.

    Args:
        trace: the reference stream (straddling accesses use their first
            line; the synthetic workloads are aligned, so this matches the
            LRU sweeps).
        capacity: cache capacity in bytes (multiple of ``line_size``).
        line_size: line size in bytes.
        kinds: optional kind filter (as in
            :func:`repro.core.stackdist.lru_miss_ratio_curve`).

    Raises:
        ValueError: if the capacity is not a positive multiple of the line
            size.
    """
    if capacity <= 0 or capacity % line_size:
        raise ValueError(
            f"capacity must be a positive multiple of line_size={line_size}"
        )
    if kinds is not None:
        mask = np.isin(trace.kinds, [int(k) for k in kinds])
        addresses = trace.addresses[mask]
    else:
        addresses = trace.addresses
    if len(addresses) == 0:
        return 0.0
    lines = addresses // line_size
    misses = belady_min_misses(lines, capacity // line_size)
    return misses / len(lines)
