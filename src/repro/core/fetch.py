"""Fetch policies: demand fetching and sequential prefetching.

The paper's prefetch experiments (Section 3.5) use **prefetch always**:
"Prefetch always verifies that line i+1 is in the cache at the time line i
is referenced, and if it is not in the cache, then it prefetches it."  So a
prefetch probe happens on *every* reference, hits and misses alike.

**Tagged prefetch** (from the author's earlier work, [Smit78]) is included
as an extension: line i+1 is probed only the first time line i is demand
referenced, which preserves most of the miss-ratio benefit at a fraction of
the probe (and traffic) cost.
"""

from __future__ import annotations

import enum

__all__ = ["FetchPolicy"]


class FetchPolicy(enum.Enum):
    """When lines are brought into the cache."""

    #: Fetch only on a miss (the paper's baseline).
    DEMAND = "demand"
    #: Probe and prefetch line i+1 on every reference to line i.
    PREFETCH_ALWAYS = "prefetch-always"
    #: Probe line i+1 only on the first demand reference to line i.
    PREFETCH_TAGGED = "prefetch-tagged"
    #: Demand fetch backed by stream buffers on the miss path ([Jou90]);
    #: the cache itself never prefetches — the organization attaches
    #: :class:`repro.core.misspath.StreamBuffers` instead.
    STREAM = "stream"

    @property
    def prefetches(self) -> bool:
        """True for the two in-cache prefetching policies.

        ``STREAM`` returns False: its prefetching lives in miss-path
        stream buffers, not in the cache's own fetch path.
        """
        return self in (FetchPolicy.PREFETCH_ALWAYS, FetchPolicy.PREFETCH_TAGGED)
