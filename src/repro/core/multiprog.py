"""Multiprogrammed simulation, the paper's Table 3 methodology.

Four of the paper's write-back measurements come from multiprogramming
simulations "in which the traces were run through the simulator in a round
robin manner, switching and purging every 20,000 memory references."  This
module packages that recipe: interleave the member traces round-robin with
a given quantum, and purge the cache at every switch.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..trace.filters import interleave_round_robin
from ..trace.stream import Trace
from .organization import CacheOrganization
from .simulator import SimulationReport, simulate

__all__ = ["simulate_multiprogrammed", "DEFAULT_QUANTUM"]

#: The paper's standard task-switch quantum in references ("We believe that
#: the value 20,000 is reasonable and representative").
DEFAULT_QUANTUM = 20_000


def simulate_multiprogrammed(
    traces: Sequence[Trace],
    make_organization: Callable[[], CacheOrganization],
    quantum: int = DEFAULT_QUANTUM,
    length: int | None = None,
) -> SimulationReport:
    """Round-robin multiprogramming run with purge-on-switch.

    Args:
        traces: the member programs of the mix (a single trace reproduces
            the paper's uniprogrammed-with-purging runs).
        make_organization: factory for a fresh cache organization.
        quantum: references per time slice; the cache is purged at each
            switch.
        length: total references to simulate; defaults to the summed trace
            lengths.

    Returns:
        The simulation report for the mixed stream.
    """
    if len(traces) == 1 and (length is None or length <= len(traces[0])):
        # Uniprogrammed run: the raw trace (truncated if asked), with the
        # purge clock still ticking every quantum.
        mixed = traces[0] if length is None else traces[0][:length]
    else:
        # Multi-trace mixes — and a single trace asked to run *longer*
        # than it is — share the restart semantics of the round-robin
        # interleave: an exhausted program resumes from its beginning, so
        # ``length`` references are always simulated (the paper's runs
        # were bounded by total references, not by trace end).
        mixed = interleave_round_robin(traces, quantum=quantum, length=length)
    return simulate(mixed, make_organization(), purge_interval=quantum)
