"""Replacement policies.

The paper's experiments all use LRU ("a fully associative cache managed with
LRU replacement"), which is the default everywhere in this package.  FIFO,
random and LFU are provided for the ablation benchmarks, and an offline
optimal policy (Belady's MIN) is available as a lower-bound reference.

A policy instance manages *one set*; the cache creates one policy object per
set via :func:`ReplacementPolicyFactory`.  The set's resident lines live in
an ordered dict owned by the cache (:class:`repro.core.cache.CacheSet`); the
policy only decides ordering and victim choice, so policies stay tiny and the
hot path stays cheap.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Callable

import numpy as np

__all__ = [
    "ReplacementPolicy",
    "ReplacementPolicyFactory",
    "LRU",
    "FIFO",
    "RandomReplacement",
    "LFU",
    "policy_factory",
]

#: Callable producing a fresh policy instance for each cache set.
ReplacementPolicyFactory = Callable[[], "ReplacementPolicy"]


class ReplacementPolicy(abc.ABC):
    """Victim-selection strategy for a single cache set.

    The cache calls :meth:`on_hit` when a resident line is referenced,
    :meth:`on_insert` when a line is brought in, :meth:`on_evict` after the
    victim has been removed, and :meth:`choose_victim` when space is needed.
    ``lines`` is the set's residency map, ordered by insertion and reordered
    only by the policy itself.
    """

    name = "abstract"

    @abc.abstractmethod
    def on_hit(self, lines: OrderedDict, tag: int) -> None:
        """Record a reference to resident line ``tag``."""

    def on_insert(self, lines: OrderedDict, tag: int) -> None:
        """Record that ``tag`` was just inserted (it is last in ``lines``)."""

    def on_evict(self, tag: int) -> None:
        """Drop any per-line state for ``tag``."""

    @abc.abstractmethod
    def choose_victim(self, lines: OrderedDict) -> int:
        """Tag of the line to evict; ``lines`` is non-empty."""


class LRU(ReplacementPolicy):
    """Least-recently-used: the paper's replacement policy.

    The residency dict is kept in recency order (least recent first) by
    moving hit lines to the end, so victim choice is O(1).
    """

    name = "lru"

    def on_hit(self, lines: OrderedDict, tag: int) -> None:
        lines.move_to_end(tag)

    def choose_victim(self, lines: OrderedDict) -> int:
        return next(iter(lines))


class FIFO(ReplacementPolicy):
    """First-in-first-out: insertion order, ignores hits."""

    name = "fifo"

    def on_hit(self, lines: OrderedDict, tag: int) -> None:
        pass

    def choose_victim(self, lines: OrderedDict) -> int:
        return next(iter(lines))


class RandomReplacement(ReplacementPolicy):
    """Uniform-random victim choice.

    Args:
        rng: numpy Generator; pass a seeded one for reproducible runs.
    """

    name = "random"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng or np.random.default_rng(0)

    def on_hit(self, lines: OrderedDict, tag: int) -> None:
        pass

    def choose_victim(self, lines: OrderedDict) -> int:
        keys = list(lines)
        return keys[int(self._rng.integers(len(keys)))]


class LFU(ReplacementPolicy):
    """Least-frequently-used with reference counting.

    Counts reset when a line is evicted (no aging), which is the classic
    in-cache LFU variant.  Ties break toward the least recently inserted.
    """

    name = "lfu"

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}

    def on_hit(self, lines: OrderedDict, tag: int) -> None:
        self._counts[tag] = self._counts.get(tag, 1) + 1

    def on_insert(self, lines: OrderedDict, tag: int) -> None:
        self._counts[tag] = 1

    def on_evict(self, tag: int) -> None:
        self._counts.pop(tag, None)

    def choose_victim(self, lines: OrderedDict) -> int:
        return min(lines, key=lambda tag: self._counts.get(tag, 0))


_POLICIES: dict[str, Callable[..., ReplacementPolicy]] = {
    LRU.name: LRU,
    FIFO.name: FIFO,
    RandomReplacement.name: RandomReplacement,
    LFU.name: LFU,
}


def policy_factory(name: str = "lru", seed: int | None = None) -> ReplacementPolicyFactory:
    """Factory of per-set policy instances by name.

    Args:
        name: one of ``lru``, ``fifo``, ``random``, ``lfu``.
        seed: base seed for stochastic policies; each set gets an
            independent stream derived from it.

    Raises:
        ValueError: for an unknown policy name.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    if cls is RandomReplacement:
        seeds = np.random.SeedSequence(0 if seed is None else seed)

        def make_random() -> ReplacementPolicy:
            nonlocal seeds
            seeds, child = seeds.spawn(2)
            return RandomReplacement(np.random.default_rng(child))

        return make_random
    return cls
