"""Miss-path mechanisms: victim/miss caches, stream buffers, and an L2.

The paper's design space stops at one cache level with demand or
sequential-prefetch fetching.  This module adds the miss-path mechanisms
that dominated the decade after 1985 — Jouppi's fully-associative victim
and miss caches, his stream buffers, and an inclusive second cache level —
as *composable components* hung off a primary cache's miss path.

Component model
---------------
A :class:`MissPathComponent` sees three events from the primary cache(s):

* ``probe(kind, line)`` — the primary missed on ``line``; the component
  reports a hit (returning preserved flag bits to merge into the refilled
  line) or a miss (``None``).  Components are probed in chain order and
  the first hit services the miss.
* ``on_evict(line, flags)`` — the primary replaced ``line``; a component
  may take custody of it (victim cache) by returning True, which also
  transfers the write-back obligation.
* ``on_fill(kind, line, source)`` — a miss for ``line`` has been resolved
  (``source`` is the servicing component, or None for memory); fill-
  capturing components (miss cache, inclusive L2) react here.

A :class:`MissPathChain` owns an ordered tuple of components (canonical
order: victim cache, miss cache, stream buffers, L2) and is what a
:class:`~repro.core.cache.Cache` calls from its miss and eviction paths.
Each component keeps its own :class:`~repro.core.stats.CacheStats` whose
per-class counters record *probes* — so ``1 - stats.miss_ratio`` is the
component's hit rate, and the usual NaN convention applies when a
component was never probed.

Traffic convention
------------------
``dirty_pushes`` on any stats block counts dirty lines pushed out of
*that* structure to the next level down, whatever it is.  A dirty line
captured by a victim cache is therefore **not** counted as a dirty push at
the primary (custody moved sideways, no transfer to the next level); it is
counted when it finally leaves the victim cache.  With an L2 in the chain,
memory-side write-backs are the L2's ``dirty_pushes``; without one they
are the sum over the primary and the components.  See
:attr:`repro.core.simulator.SimulationReport.effective_memory_traffic_bytes`.

Model simplifications (documented deliberately):

* Stream buffers fetch from memory, bypassing the L2's reference counters;
  the inclusive L2 quietly mirrors buffer-serviced fills to keep inclusion.
* Back-invalidated primary lines vanish (their dirty state is counted as a
  push at the primary); they are not offered to a victim cache.
* Purges drop stream-buffer contents without counting pushes (buffer
  entries are prefetches in flight, not resident lines).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

from ..trace.record import AccessKind
from .address import CacheGeometry
from .cache import (
    FLAG_DATA,
    FLAG_DIRTY,
    FLAG_REFERENCED,
    Cache,
)
from .replacement import ReplacementPolicyFactory
from .stats import CacheStats
from .write import COPY_BACK, WritePolicy

__all__ = [
    "MechanismConfig",
    "MissCache",
    "MissPathChain",
    "MissPathComponent",
    "SecondLevelCache",
    "StreamBuffers",
    "VictimCache",
]

_READ = int(AccessKind.READ)
_WRITE = int(AccessKind.WRITE)


class MissPathComponent:
    """One mechanism on a primary cache's miss path.

    Subclasses override the event hooks they care about.  ``stats`` holds
    the component's own counters: per-class references/misses record
    probes (so hit rate is ``1 - miss_ratio``), push counters record lines
    leaving the component, and the prefetch counters are used by
    :class:`StreamBuffers`.
    """

    #: Stable identifier; unique within a chain and used as the stats key
    #: in :attr:`repro.core.simulator.SimulationReport.mechanisms`.
    name: str = "component"

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._chain: MissPathChain | None = None
        self._index = -1
        self._line_size = 0

    # -- wiring ---------------------------------------------------------------

    def _attach(self, chain: "MissPathChain", index: int, line_size: int) -> None:
        if self._chain is not None:
            raise ValueError(
                f"miss-path component {self.name!r} is already attached to a "
                "chain; build a fresh component per organization"
            )
        self._chain = chain
        self._index = index
        self._line_size = line_size
        self.stats.line_size = line_size

    # -- event hooks ----------------------------------------------------------

    def probe(self, kind: int, line: int) -> int | None:
        """Probe for ``line`` on a primary miss.

        Returns preserved flag bits (>= 0) on a hit, None on a miss.
        """
        return None

    def on_evict(self, line: int, flags: int) -> bool:
        """The primary replaced ``line``; True iff this component took
        custody of it (and of its write-back obligation)."""
        return False

    def on_fill(self, kind: int, line: int, source: "MissPathComponent | None") -> None:
        """A miss for ``line`` was resolved; ``source`` serviced it."""

    def accepts_writeback(self, line: int) -> bool:
        """Absorb a dirty write-back travelling down the chain; True iff
        absorbed (an inclusive L2 marks its copy dirty)."""
        return False

    # -- lifecycle ------------------------------------------------------------

    def purge(self) -> None:
        """Invalidate the component's contents (task switch)."""

    def reset_statistics(self) -> None:
        """Zero the counters without touching contents (warm start)."""
        self.stats.clear()

    def is_warm(self) -> bool:
        """True iff the component holds state or non-zero counters."""
        return bool(self.stats.references or self.stats.pushes or self.stats.prefetches)

    def _writeback_down(self, line: int) -> None:
        """Send a dirty line leaving this component toward memory."""
        if self._chain is not None:
            self._chain.writeback_below(self._index, line)

    def _count_push(self, flags: int) -> None:
        stats = self.stats
        if flags & FLAG_DATA:
            stats.data_pushes += 1
            if flags & FLAG_DIRTY:
                stats.dirty_data_pushes += 1
        if flags & FLAG_DIRTY:
            stats.dirty_pushes += 1


class MissPathChain:
    """Ordered miss-path components shared by a cache organization.

    The chain is what the primary :class:`~repro.core.cache.Cache` calls:
    ``service_miss`` from its miss path and ``on_evict`` from its
    replacement path.  A split organization shares one chain between its
    instruction and data caches (line sizes are equal by construction, so
    memory line numbers are unambiguous).
    """

    def __init__(self, components) -> None:
        comps = tuple(components)
        for comp in comps:
            if not isinstance(comp, MissPathComponent):
                raise TypeError(f"not a MissPathComponent: {comp!r}")
        names = [comp.name for comp in comps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate miss-path component names: {names}")
        self.components = comps
        self._members: tuple[Cache, ...] = ()

    def attach(self, members: tuple[Cache, ...], line_size: int) -> None:
        """Wire the chain to its primary caches (called by the organization)."""
        self._members = members
        for index, comp in enumerate(self.components):
            comp._attach(self, index, line_size)

    # -- events from the primary cache ----------------------------------------

    def service_miss(self, kind: int, line: int) -> int:
        """Walk the chain on a primary miss; returns flag bits for the
        refilled line (0 when memory services it)."""
        source: MissPathComponent | None = None
        extra = 0
        for comp in self.components:
            result = comp.probe(kind, line)
            if result is not None:
                source = comp
                extra = result
                break
        for comp in self.components:
            comp.on_fill(kind, line, source)
        return extra

    def on_evict(self, line: int, flags: int) -> bool:
        """Offer a replaced primary line along the chain.

        Returns True iff a component captured it (victim cache), in which
        case the primary skips its dirty/data push accounting — custody
        and the write-back obligation moved into the component.
        """
        for comp in self.components:
            if comp.on_evict(line, flags):
                return True
        return False

    def writeback_below(self, index: int, line: int) -> bool:
        """Route a dirty line leaving component ``index`` downward."""
        for comp in self.components[index + 1 :]:
            if comp.accepts_writeback(line):
                return True
        return False

    # -- lifecycle ------------------------------------------------------------

    def purge(self) -> None:
        for comp in self.components:
            comp.purge()

    def reset_statistics(self) -> None:
        for comp in self.components:
            comp.reset_statistics()

    def is_warm(self) -> bool:
        return any(comp.is_warm() for comp in self.components)

    def mechanism_stats(self) -> tuple[tuple[str, CacheStats], ...]:
        """(name, stats) per component, in chain order."""
        return tuple((comp.name, comp.stats) for comp in self.components)


class VictimCache(MissPathComponent):
    """Jouppi's victim cache: a small fully-associative buffer of lines
    recently *replaced* in the primary cache.

    A probe hit removes the line (it swaps back into the primary, whose
    displaced victim then arrives via ``on_evict`` — the net effect is the
    swap of [Jou90]); flag bits, including dirty state, survive the round
    trip.  Dirty lines falling out of the victim cache count as its dirty
    pushes and travel down the chain (an L2 absorbs them).
    """

    name = "victim-cache"

    def __init__(self, entries: int = 4) -> None:
        if entries <= 0:
            raise ValueError(f"victim cache needs a positive entry count, got {entries}")
        super().__init__()
        self.entries = entries
        self._lines: OrderedDict[int, int] = OrderedDict()

    def probe(self, kind: int, line: int) -> int | None:
        counts = self.stats.counts_by_kind()[kind]
        counts.references += 1
        flags = self._lines.pop(line, None)
        if flags is None:
            counts.misses += 1
            return None
        return flags

    def on_evict(self, line: int, flags: int) -> bool:
        lines = self._lines
        if line in lines:  # stale duplicate: refresh in place
            del lines[line]
        elif len(lines) >= self.entries:
            victim, victim_flags = lines.popitem(last=False)
            self.stats.replacement_pushes += 1
            self._count_push(victim_flags)
            if victim_flags & FLAG_DIRTY:
                self._writeback_down(victim)
        lines[line] = flags
        return True

    def purge(self) -> None:
        stats = self.stats
        for flags in self._lines.values():
            stats.purge_pushes += 1
            self._count_push(flags)
        self._lines.clear()
        stats.purges += 1

    def is_warm(self) -> bool:
        return bool(self._lines) or super().is_warm()

    def resident_lines(self) -> list[int]:
        """Line numbers held, LRU to MRU (testing/introspection)."""
        return list(self._lines)


class MissCache(MissPathComponent):
    """Jouppi's miss cache: a small fully-associative cache of the lines
    most recently *missed on* (duplicate copies of primary fills).

    Unlike the victim cache, a probe hit keeps the line (it is a copy);
    every resolved primary miss is inserted via ``on_fill``.  Copies are
    clean, so evictions never cost write-backs.
    """

    name = "miss-cache"

    def __init__(self, entries: int = 4) -> None:
        if entries <= 0:
            raise ValueError(f"miss cache needs a positive entry count, got {entries}")
        super().__init__()
        self.entries = entries
        self._lines: OrderedDict[int, None] = OrderedDict()

    def probe(self, kind: int, line: int) -> int | None:
        counts = self.stats.counts_by_kind()[kind]
        counts.references += 1
        if line in self._lines:
            self._lines.move_to_end(line)
            return 0
        counts.misses += 1
        return None

    def on_fill(self, kind: int, line: int, source: MissPathComponent | None) -> None:
        if source is self:
            return  # probe already refreshed recency
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            return
        if len(lines) >= self.entries:
            lines.popitem(last=False)
            self.stats.replacement_pushes += 1
        lines[line] = None

    def purge(self) -> None:
        self.stats.purge_pushes += len(self._lines)
        self._lines.clear()
        self.stats.purges += 1

    def is_warm(self) -> bool:
        return bool(self._lines) or super().is_warm()

    def resident_lines(self) -> list[int]:
        """Line numbers held, LRU to MRU (testing/introspection)."""
        return list(self._lines)


class StreamBuffers(MissPathComponent):
    """Jouppi's multi-way stream buffers: FIFO queues of sequentially
    prefetched lines, probed at their heads only.

    A head hit consumes the line, counts a useful prefetch, and tops the
    buffer up with the next sequential line; a miss allocates the
    least-recently-used buffer with lines ``line+1 .. line+depth``.
    Coverage is ``1 - stats.miss_ratio``; issued buffer fetches are
    ``stats.prefetches`` (they are memory traffic), and
    ``stats.prefetch_accuracy`` is the fraction consumed.
    """

    name = "stream-buffers"

    def __init__(self, buffers: int = 4, depth: int = 4) -> None:
        if buffers <= 0 or depth <= 0:
            raise ValueError(
                f"stream buffers need positive counts, got {buffers} x {depth}"
            )
        super().__init__()
        self.buffers = buffers
        self.depth = depth
        self._queues: list[deque[int]] = [deque() for _ in range(buffers)]
        self._next: list[int] = [0] * buffers
        self._used: list[int] = [0] * buffers
        self._tick = 0

    def probe(self, kind: int, line: int) -> int | None:
        counts = self.stats.counts_by_kind()[kind]
        counts.references += 1
        self._tick += 1
        for index, queue in enumerate(self._queues):
            if queue and queue[0] == line:
                queue.popleft()
                queue.append(self._next[index])
                self._next[index] += 1
                stats = self.stats
                stats.prefetches += 1
                stats.useful_prefetches += 1
                self._used[index] = self._tick
                return 0
        counts.misses += 1
        # Allocate the LRU buffer to the new stream (Jouppi: buffers are
        # (re)allocated on misses that miss the buffers too).
        index = self._used.index(min(self._used))
        self._queues[index] = deque(range(line + 1, line + 1 + self.depth))
        self._next[index] = line + 1 + self.depth
        self._used[index] = self._tick
        self.stats.prefetches += self.depth
        return None

    def purge(self) -> None:
        for queue in self._queues:
            queue.clear()
        self._used = [0] * self.buffers
        self._tick = 0
        self.stats.purges += 1

    def is_warm(self) -> bool:
        return any(self._queues) or super().is_warm()

    def pending_lines(self) -> list[list[int]]:
        """Queued line numbers per buffer (testing/introspection)."""
        return [list(queue) for queue in self._queues]


class _L2EvictionObserver:
    """Miss-path hook of the L2's internal Cache: back-invalidation.

    The L2's own misses go to memory (``service_miss`` is a no-op), but
    its replacements must evict any covered primary lines to keep the
    hierarchy inclusive.
    """

    __slots__ = ("owner",)

    def __init__(self, owner: "SecondLevelCache") -> None:
        self.owner = owner

    def service_miss(self, kind: int, line: int) -> int:
        return 0

    def on_evict(self, line: int, flags: int) -> bool:
        self.owner._back_invalidate(line)
        return False


class SecondLevelCache(MissPathComponent):
    """An inclusive unified second-level cache behind the primary.

    The component wraps a real :class:`~repro.core.cache.Cache` with its
    own geometry (its line size must be >= the primary's, a power-of-two
    multiple).  It is probed last; an L2 miss fetches the line from memory
    into the L2 (counted in its ``demand_fetches``), so its stats block
    *is* the L1↔memory traffic account: ``references``/``misses`` are the
    primary misses reaching it, ``lines_fetched`` and ``dirty_pushes`` the
    memory-side transfers.  Inclusion is maintained by back-invalidating
    primary lines covered by an L2 replacement (their dirty state counts
    as a primary push) and by quietly mirroring fills serviced above the
    L2 (victim/miss cache or stream-buffer hits).
    """

    name = "l2"

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement: ReplacementPolicyFactory | None = None,
        write_policy: WritePolicy = COPY_BACK,
    ) -> None:
        super().__init__()
        self.cache = Cache(
            geometry, replacement, write_policy, miss_path=_L2EvictionObserver(self)
        )
        self.stats = self.cache.stats  # the wrapped cache keeps the counters
        self._members: tuple[Cache, ...] = ()
        self._ratio = 1  # primary lines per L2 line

    def _attach(self, chain: MissPathChain, index: int, line_size: int) -> None:
        l2_line = self.cache.geometry.line_size
        if l2_line % line_size:
            raise ValueError(
                f"L2 line size {l2_line} must be a multiple of the primary "
                f"line size {line_size}"
            )
        super()._attach(chain, index, line_size)
        self.stats.line_size = l2_line  # undo the chain's primary-line stamp
        self._members = chain._members
        self._ratio = l2_line // line_size

    def probe(self, kind: int, line: int) -> int | None:
        # One primary line never straddles an L2 line (power-of-two sizes).
        hit = self.cache.access_raw(kind, line * self._line_size, self._line_size)
        return 0 if hit else None

    def on_evict(self, line: int, flags: int) -> bool:
        if flags & FLAG_DIRTY:
            # Dirty L1 victim written back into the L2 (L1→L2 traffic; the
            # L1 push accounting stands — it is a push to the next level).
            self.cache.mark_dirty(line * self._line_size)
        return False

    def accepts_writeback(self, line: int) -> bool:
        return self.cache.mark_dirty(line * self._line_size)

    def on_fill(self, kind: int, line: int, source: MissPathComponent | None) -> None:
        if source is self or source is None:
            return  # a memory fill already passed through probe()
        address = line * self._line_size
        if not self.cache.contains(address):
            # Inclusion repair for fills serviced above the L2.
            flags = FLAG_REFERENCED
            if kind == _READ or kind == _WRITE:
                flags |= FLAG_DATA
            self.cache.fill_line(address, flags)

    def _back_invalidate(self, l2_line: int) -> None:
        base = l2_line * self._ratio
        for covered in range(base, base + self._ratio):
            address = covered * self._line_size
            for member in self._members:
                member.invalidate(address)

    def purge(self) -> None:
        self.cache.purge()

    def reset_statistics(self) -> None:
        self.cache.reset_statistics()

    def is_warm(self) -> bool:
        return len(self.cache) > 0 or super().is_warm()


@dataclass(frozen=True, slots=True)
class MechanismConfig:
    """Declarative miss-path configuration for jobs and the CLI.

    Zero/None fields mean "mechanism absent"; :meth:`build` materializes
    the configured components in canonical chain order (victim cache, miss
    cache, stream buffers, L2).  The identity participates in campaign
    cache keys (see :data:`repro.core.jobs.CACHE_SCHEMA_VERSION`).
    """

    victim_entries: int = 0
    miss_entries: int = 0
    stream_buffers: int = 0
    stream_depth: int = 4
    l2_size: int | None = None
    l2_line_size: int | None = None
    l2_associativity: int | None = None

    def __post_init__(self) -> None:
        if self.victim_entries < 0 or self.miss_entries < 0:
            raise ValueError("victim/miss entry counts must be non-negative")
        if self.stream_buffers < 0 or self.stream_depth <= 0:
            raise ValueError("stream buffer counts must be sane (depth positive)")
        if self.l2_size is None and (
            self.l2_line_size is not None or self.l2_associativity is not None
        ):
            raise ValueError("l2_line_size/l2_associativity need l2_size")

    @property
    def active(self) -> bool:
        """True iff any mechanism is configured."""
        return bool(
            self.victim_entries
            or self.miss_entries
            or self.stream_buffers
            or self.l2_size
        )

    def identity(self) -> dict | None:
        """Canonical JSON-stable identity; None when inactive."""
        if not self.active:
            return None
        ident: dict = {}
        if self.victim_entries:
            ident["victim"] = self.victim_entries
        if self.miss_entries:
            ident["miss"] = self.miss_entries
        if self.stream_buffers:
            ident["stream"] = [self.stream_buffers, self.stream_depth]
        if self.l2_size:
            ident["l2"] = [self.l2_size, self.l2_line_size, self.l2_associativity]
        return ident

    def build(self, line_size: int) -> tuple[MissPathComponent, ...]:
        """Fresh components in canonical chain order."""
        components: list[MissPathComponent] = []
        if self.victim_entries:
            components.append(VictimCache(self.victim_entries))
        if self.miss_entries:
            components.append(MissCache(self.miss_entries))
        if self.stream_buffers:
            components.append(StreamBuffers(self.stream_buffers, self.stream_depth))
        if self.l2_size:
            geometry = CacheGeometry(
                self.l2_size,
                self.l2_line_size if self.l2_line_size else line_size,
                self.l2_associativity,
            )
            components.append(SecondLevelCache(geometry))
        return tuple(components)
