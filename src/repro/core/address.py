"""Cache geometry and address arithmetic.

A cache in this package is described by a :class:`CacheGeometry`: total
capacity in bytes, line (block) size in bytes, and associativity.  The
paper's main experiments use fully associative caches ("The full
associativity ... indicate[s] that in a real machine, performance would be
lower"); set-associative and direct-mapped geometries are supported for the
ablations and for modelling real machines like the 2-way VAX 11/780.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheGeometry", "is_power_of_two", "log2_int"]


def is_power_of_two(value: int) -> bool:
    """True iff ``value`` is a positive power of two."""
    return value > 0 and value & (value - 1) == 0


def log2_int(value: int) -> int:
    """Exact integer log2.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True, slots=True)
class CacheGeometry:
    """Shape of a cache: capacity, line size and associativity.

    Args:
        capacity: total data capacity in bytes.
        line_size: bytes per line (block).  The paper's standard is 16.
        associativity: lines per set.  ``None`` (the default) means fully
            associative — one set holding every line, the paper's standard
            configuration.

    Raises:
        ValueError: if the capacity or line size is not a power of two, the
            line size exceeds the capacity, or the associativity does not
            divide the number of lines.
    """

    capacity: int
    line_size: int = 16
    associativity: int | None = None

    def __post_init__(self) -> None:
        if not is_power_of_two(self.capacity):
            raise ValueError(f"capacity must be a power of two, got {self.capacity}")
        if not is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.line_size > self.capacity:
            raise ValueError(
                f"line_size {self.line_size} exceeds capacity {self.capacity}"
            )
        if self.associativity is not None:
            if self.associativity <= 0:
                raise ValueError(
                    f"associativity must be positive, got {self.associativity}"
                )
            if self.num_lines % self.associativity:
                raise ValueError(
                    f"associativity {self.associativity} does not divide "
                    f"{self.num_lines} lines"
                )

    @property
    def num_lines(self) -> int:
        """Total number of lines in the cache."""
        return self.capacity // self.line_size

    @property
    def ways(self) -> int:
        """Effective associativity (``num_lines`` when fully associative)."""
        return self.num_lines if self.associativity is None else self.associativity

    @property
    def num_sets(self) -> int:
        """Number of sets (1 when fully associative)."""
        return self.num_lines // self.ways

    @property
    def is_fully_associative(self) -> bool:
        """True when the cache is a single set."""
        return self.num_sets == 1

    @property
    def is_direct_mapped(self) -> bool:
        """True when every set holds one line."""
        return self.ways == 1

    @property
    def offset_bits(self) -> int:
        """Bits of byte offset within a line."""
        return log2_int(self.line_size)

    @property
    def index_bits(self) -> int:
        """Bits of set index."""
        return log2_int(self.num_sets)

    def line_number(self, address: int) -> int:
        """Memory line number containing ``address``."""
        return address >> self.offset_bits

    def set_index(self, line_number: int) -> int:
        """Set that memory line ``line_number`` maps to (bit selection)."""
        return line_number & (self.num_sets - 1)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``'16KiB, 16B lines, fully assoc'``."""
        if self.is_fully_associative:
            assoc = "fully assoc"
        elif self.is_direct_mapped:
            assoc = "direct-mapped"
        else:
            assoc = f"{self.ways}-way"
        return f"{_human_bytes(self.capacity)}, {self.line_size}B lines, {assoc}"


def _human_bytes(count: int) -> str:
    if count >= 1024 and count % 1024 == 0:
        return f"{count // 1024}KiB"
    return f"{count}B"
