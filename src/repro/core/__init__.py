"""The trace-driven cache simulator (Substrate A of the reproduction).

Everything the paper's experiments need: a set-associative/fully-associative
cache with LRU (and other) replacement, demand and prefetch fetch policies,
copy-back and write-through write policies, unified and split organizations,
sector (block/sub-block) caches, task-switch purging, multiprogrammed
round-robin simulation, one-pass LRU stack-distance analysis, and a simple
memory-timing performance model.
"""

from .address import CacheGeometry, is_power_of_two, log2_int
from .cache import (
    Cache,
    FLAG_DATA,
    FLAG_DIRTY,
    FLAG_PREFETCHED,
    FLAG_REFERENCED,
)
from .fetch import FetchPolicy
from .kernels import (
    all_associativity_hit_counts,
    associativity_miss_surface,
    can_replay,
    lru_demand_replay,
)
from .memory import MemoryTiming, PerformanceModel, traffic_ratio
from .misspath import (
    MechanismConfig,
    MissCache,
    MissPathChain,
    MissPathComponent,
    SecondLevelCache,
    StreamBuffers,
    VictimCache,
)
from .multiprog import DEFAULT_QUANTUM, simulate_multiprogrammed
from .opt import belady_min_misses, belady_miss_ratio
from .organization import CacheOrganization, SplitCache, UnifiedCache
from .replacement import (
    FIFO,
    LFU,
    LRU,
    RandomReplacement,
    ReplacementPolicy,
    policy_factory,
)
from .sector import SectorCache, SectorCacheOrganization, SectorGeometry
from .simulator import SimulationReport, simulate
from .stackdist import StackDistanceProfile, lru_miss_ratio_curve, lru_stack_distances
from .stats import CacheStats, ClassCounts
from .write import COPY_BACK, WRITE_THROUGH, WRITE_THROUGH_ALLOCATE, WritePolicy, WriteStrategy

__all__ = [
    "CacheGeometry",
    "is_power_of_two",
    "log2_int",
    "Cache",
    "FLAG_DATA",
    "FLAG_DIRTY",
    "FLAG_PREFETCHED",
    "FLAG_REFERENCED",
    "FetchPolicy",
    "all_associativity_hit_counts",
    "associativity_miss_surface",
    "can_replay",
    "lru_demand_replay",
    "MemoryTiming",
    "PerformanceModel",
    "traffic_ratio",
    "MechanismConfig",
    "MissCache",
    "MissPathChain",
    "MissPathComponent",
    "SecondLevelCache",
    "StreamBuffers",
    "VictimCache",
    "belady_min_misses",
    "belady_miss_ratio",
    "DEFAULT_QUANTUM",
    "simulate_multiprogrammed",
    "CacheOrganization",
    "SplitCache",
    "UnifiedCache",
    "LRU",
    "FIFO",
    "LFU",
    "RandomReplacement",
    "ReplacementPolicy",
    "policy_factory",
    "SectorCache",
    "SectorCacheOrganization",
    "SectorGeometry",
    "SimulationReport",
    "simulate",
    "StackDistanceProfile",
    "lru_miss_ratio_curve",
    "lru_stack_distances",
    "CacheStats",
    "ClassCounts",
    "COPY_BACK",
    "WRITE_THROUGH",
    "WRITE_THROUGH_ALLOCATE",
    "WritePolicy",
    "WriteStrategy",
]
