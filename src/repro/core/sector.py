"""Sector (block/sub-block) cache, the Zilog Z80000 design.

The paper's motivating mis-prediction ([Alpe83], Section 1.2) concerns a
sector cache: "The machine uses a sector cache (block/subblock), with a 16
byte sector (larger block) and then fetches either 2 bytes, 4 bytes or 16
bytes (called a block or subblock)."

In a sector cache the address tag covers a whole *sector*, but data is
fetched one *sub-block* at a time, each with its own valid bit.  A reference
can therefore miss two ways:

* **sector miss** — no resident sector matches; a victim sector is pushed
  (writing back its dirty sub-blocks) and only the referenced sub-block is
  fetched;
* **sub-block miss** — the sector is resident but the sub-block's valid bit
  is clear; the sub-block is fetched in place.

Both count as misses; only sub-block-sized transfers hit the bus, which is
the design's attraction for a 256-byte on-chip cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..trace.record import AccessKind, MemoryAccess
from .address import is_power_of_two
from .organization import CacheOrganization
from .stats import CacheStats

__all__ = ["SectorGeometry", "SectorCache", "SectorCacheOrganization"]

_WRITE = int(AccessKind.WRITE)
_READ = int(AccessKind.READ)


@dataclass(frozen=True, slots=True)
class SectorGeometry:
    """Shape of a sector cache.

    Args:
        capacity: total data bytes.
        sector_size: bytes per sector (the tagged unit).
        subblock_size: bytes per sub-block (the fetched unit).

    Raises:
        ValueError: unless capacity, sector and sub-block sizes are powers
            of two with ``subblock_size <= sector_size <= capacity``.
    """

    capacity: int
    sector_size: int = 16
    subblock_size: int = 4

    def __post_init__(self) -> None:
        for name in ("capacity", "sector_size", "subblock_size"):
            if not is_power_of_two(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two, got {getattr(self, name)}")
        if not self.subblock_size <= self.sector_size <= self.capacity:
            raise ValueError(
                "expected subblock_size <= sector_size <= capacity, got "
                f"{self.subblock_size}/{self.sector_size}/{self.capacity}"
            )

    @property
    def num_sectors(self) -> int:
        """Sector frames in the cache."""
        return self.capacity // self.sector_size

    @property
    def subblocks_per_sector(self) -> int:
        """Sub-blocks per sector."""
        return self.sector_size // self.subblock_size


class SectorCache:
    """Fully associative LRU sector cache.

    Statistics land in a standard :class:`~repro.core.stats.CacheStats`
    with ``line_size`` set to the sub-block size, so traffic accounting
    (bytes = sub-block transfers x sub-block size) composes with the rest of
    the package.

    Args:
        geometry: the sector-cache shape.
        copy_back: if True (default), writes dirty sub-blocks back on
            eviction; otherwise writes go straight through.
    """

    def __init__(self, geometry: SectorGeometry, copy_back: bool = True) -> None:
        self.geometry = geometry
        self.copy_back = copy_back
        self.stats = CacheStats(line_size=geometry.subblock_size)
        # sector number -> (valid_mask, dirty_mask, data_mask)
        self._sectors: OrderedDict[int, list[int]] = OrderedDict()

    # -- public API ----------------------------------------------------------

    def access(self, access: MemoryAccess) -> bool:
        """Apply one typed reference; True iff it hit."""
        return self.access_raw(int(access.kind), access.address, access.size)

    def access_raw(self, kind: int, address: int, size: int) -> bool:
        """Apply one reference; a straddling access probes each sub-block."""
        geometry = self.geometry
        first = address // geometry.subblock_size
        last = (address + size - 1) // geometry.subblock_size
        hit = self._reference_subblock(kind, first, size)
        for subblock in range(first + 1, last + 1):
            self._reference_subblock(kind, subblock, size)
        return hit

    def purge(self) -> None:
        """Invalidate everything, pushing valid sub-blocks."""
        for masks in self._sectors.values():
            self._push_sector(masks, purge=True)
        self._sectors.clear()
        self.stats.purges += 1

    def reset_statistics(self) -> None:
        """Zero the counters in place without touching cache contents
        (warm start; external holders of ``stats`` stay attached)."""
        self.stats.clear()

    def contains(self, address: int) -> bool:
        """True iff the sub-block holding ``address`` is resident and valid."""
        subblock = address // self.geometry.subblock_size
        sector, offset = divmod(subblock, self.geometry.subblocks_per_sector)
        masks = self._sectors.get(sector)
        return masks is not None and bool(masks[0] >> offset & 1)

    def __len__(self) -> int:
        """Number of resident sectors."""
        return len(self._sectors)

    # -- internals -----------------------------------------------------------

    def _reference_subblock(self, kind: int, subblock: int, size: int) -> bool:
        stats = self.stats
        counts = stats.counts_for(AccessKind(kind))
        counts.references += 1

        sector, offset = divmod(subblock, self.geometry.subblocks_per_sector)
        bit = 1 << offset
        is_write = kind == _WRITE
        masks = self._sectors.get(sector)
        hit = masks is not None and bool(masks[0] & bit)

        if masks is None:
            # Sector miss: allocate a frame, fetch only this sub-block.
            if len(self._sectors) >= self.geometry.num_sectors:
                _victim, victim_masks = self._sectors.popitem(last=False)
                self._push_sector(victim_masks, purge=False)
            masks = [0, 0, 0]
            self._sectors[sector] = masks
        else:
            self._sectors.move_to_end(sector)

        if not hit:
            counts.misses += 1
            stats.demand_fetches += 1  # one sub-block transfer
            masks[0] |= bit

        if is_write:
            if self.copy_back:
                masks[1] |= bit
            else:
                stats.write_throughs += 1
                stats.write_through_bytes += min(size, self.geometry.subblock_size)
        if is_write or kind == _READ:
            masks[2] |= bit
        return hit

    def _push_sector(self, masks: list[int], purge: bool) -> None:
        """Count the eviction of one sector, sub-block by sub-block."""
        stats = self.stats
        valid, dirty, data = masks
        while valid:
            low = valid & -valid
            valid ^= low
            if purge:
                stats.purge_pushes += 1
            else:
                stats.replacement_pushes += 1
            if data & low:
                stats.data_pushes += 1
                if dirty & low:
                    stats.dirty_data_pushes += 1
            if dirty & low:
                stats.dirty_pushes += 1


class SectorCacheOrganization(CacheOrganization):
    """Adapter presenting a :class:`SectorCache` as a cache organization.

    Lets sector caches drive through the standard
    :func:`repro.core.simulator.simulate` loop (purge intervals, warmup,
    reports) like any unified cache::

        organization = SectorCacheOrganization(SectorGeometry(256, 16, 4))
        report = simulate(trace, organization, purge_interval=20_000)

    Args: forwarded to :class:`SectorCache`.
    """

    def __init__(self, geometry: SectorGeometry, copy_back: bool = True) -> None:
        self.cache = SectorCache(geometry, copy_back)

    def access_raw(self, kind: int, address: int, size: int) -> bool:
        return self.cache.access_raw(kind, address, size)

    def purge(self) -> None:
        self.cache.purge()

    def reset_statistics(self) -> None:
        self.cache.reset_statistics()

    def is_warm(self) -> bool:
        return len(self.cache) > 0 or super().is_warm()

    def overall_stats(self) -> CacheStats:
        return self.cache.stats

    def instruction_stats(self) -> CacheStats:
        # A sector cache is unified; per-class counters live inside.
        return self.cache.stats

    def data_stats(self) -> CacheStats:
        return self.cache.stats
