"""Simulation statistics.

Every cache keeps a :class:`CacheStats`.  The counters cover everything the
paper reports: per-class reference and miss counts (Tables 1, 5, Figures 1,
3-7), memory traffic in lines and bytes for the prefetch study (Table 4,
Figures 8-10), and push/dirty-push counts for the write-back analysis
(Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..trace.record import AccessKind

__all__ = ["ClassCounts", "CacheStats"]


@dataclass(slots=True)
class ClassCounts:
    """References and misses for one access class."""

    references: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """References that hit."""
        return self.references - self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses per reference; NaN when there were no references.

        NaN (not 0.0) keeps the repo-wide convention for empty streams: a
        ratio over zero references is undefined, and renderers print it as
        ``nan`` rather than a misleading ``0.000``.
        """
        if self.references == 0:
            return float("nan")
        return self.misses / self.references

    def merge(self, other: "ClassCounts") -> None:
        """Accumulate ``other`` into this counter."""
        self.references += other.references
        self.misses += other.misses


@dataclass(slots=True)
class CacheStats:
    """Full counter set for one cache (or an aggregate of caches).

    Traffic accounting follows the paper's definitions:

    * *fetches from memory* — lines brought in, split into demand fetches
      (misses) and prefetches;
    * *pushes* — lines evicted or purged out of the cache; a push of a dirty
      line causes a write-back transfer (copy-back policy);
    * *write-throughs* — individual stores forwarded to memory under the
      write-through policy.

    Memory traffic (Figures 8-10) is ``lines transferred x line size`` plus
    write-through bytes.
    """

    #: Per-class reference/miss counters.
    ifetch: ClassCounts = field(default_factory=ClassCounts)
    read: ClassCounts = field(default_factory=ClassCounts)
    write: ClassCounts = field(default_factory=ClassCounts)
    #: Monitor-style unclassified fetches (M68000 traces).
    fetch: ClassCounts = field(default_factory=ClassCounts)

    #: Lines fetched from memory on demand (one per miss, under allocate).
    demand_fetches: int = 0
    #: Lines fetched from memory by the prefetch policy.
    prefetches: int = 0
    #: Prefetched lines that were referenced before leaving the cache.
    useful_prefetches: int = 0
    #: Lines removed from the cache by replacement.
    replacement_pushes: int = 0
    #: Lines removed from the cache by a purge (task switch).
    purge_pushes: int = 0
    #: Pushed lines that were dirty (these cost a write-back transfer).
    dirty_pushes: int = 0
    #: Pushes of *data* lines, and how many of those were dirty — the
    #: numerator/denominator of Table 3.  A line is a data line if any write
    #: or data read touched it; under a split organization the data cache's
    #: pushes are all data pushes.
    data_pushes: int = 0
    dirty_data_pushes: int = 0
    #: Stores forwarded straight to memory (write-through policy).
    write_throughs: int = 0
    write_through_bytes: int = 0
    #: Stores absorbed by the write-combining buffer (no new transaction).
    combined_writes: int = 0
    #: Number of purge events (not lines).
    purges: int = 0

    line_size: int = 16

    # -- derived quantities --------------------------------------------------

    @property
    def references(self) -> int:
        """Total references of all classes."""
        return (
            self.ifetch.references
            + self.read.references
            + self.write.references
            + self.fetch.references
        )

    @property
    def misses(self) -> int:
        """Total misses of all classes."""
        return self.ifetch.misses + self.read.misses + self.write.misses + self.fetch.misses

    @property
    def hits(self) -> int:
        """Total hits of all classes."""
        return self.references - self.misses

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio; NaN with no references."""
        if self.references == 0:
            return float("nan")
        return self.misses / self.references

    @property
    def instruction_miss_ratio(self) -> float:
        """Miss ratio of instruction fetches."""
        return self.ifetch.miss_ratio

    @property
    def data_miss_ratio(self) -> float:
        """Miss ratio of data reads and writes combined; NaN with none."""
        refs = self.read.references + self.write.references
        if refs == 0:
            return float("nan")
        return (self.read.misses + self.write.misses) / refs

    @property
    def pushes(self) -> int:
        """All lines pushed out (replacement + purge)."""
        return self.replacement_pushes + self.purge_pushes

    @property
    def dirty_push_fraction(self) -> float:
        """Fraction of all pushed lines that were dirty."""
        if self.pushes == 0:
            return 0.0
        return self.dirty_pushes / self.pushes

    @property
    def dirty_data_push_fraction(self) -> float:
        """Fraction of pushed *data* lines that were dirty — Table 3."""
        if self.data_pushes == 0:
            return 0.0
        return self.dirty_data_pushes / self.data_pushes

    @property
    def lines_fetched(self) -> int:
        """Lines transferred memory→cache (demand + prefetch)."""
        return self.demand_fetches + self.prefetches

    @property
    def lines_written_back(self) -> int:
        """Lines transferred cache→memory (dirty pushes)."""
        return self.dirty_pushes

    @property
    def memory_traffic_lines(self) -> int:
        """Total line transfers in either direction."""
        return self.lines_fetched + self.lines_written_back

    @property
    def memory_traffic_bytes(self) -> int:
        """Total bytes moved between cache and memory.

        Line transfers move whole lines; write-throughs move their own
        sizes.  This is the quantity whose prefetch:demand ratio appears in
        Table 4 and Figures 8-10.
        """
        return self.memory_traffic_lines * self.line_size + self.write_through_bytes

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched lines that were used; 0.0 if none issued."""
        if self.prefetches == 0:
            return 0.0
        return self.useful_prefetches / self.prefetches

    # -- bookkeeping ---------------------------------------------------------

    def counts_by_kind(self) -> tuple[ClassCounts, ClassCounts, ClassCounts, ClassCounts]:
        """Per-class counters indexed by ``int(AccessKind)`` (hot-path table).

        The tuple stays valid for the lifetime of this object: resets zero
        the :class:`ClassCounts` *in place* (see :meth:`clear`), so callers
        may cache it — the cache engine and the replay kernels do, avoiding
        an enum construction and dict lookup per reference.
        """
        return (self.ifetch, self.read, self.write, self.fetch)

    def counts_for(self, kind: AccessKind) -> ClassCounts:
        """The per-class counter for ``kind``."""
        return self.counts_by_kind()[kind]

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this object (line sizes must agree)."""
        if other.references and self.references and other.line_size != self.line_size:
            raise ValueError(
                f"cannot merge stats with line sizes {self.line_size} and {other.line_size}"
            )
        for spec in fields(self):
            value = getattr(other, spec.name)
            if isinstance(value, ClassCounts):
                getattr(self, spec.name).merge(value)
            elif spec.name != "line_size":
                setattr(self, spec.name, getattr(self, spec.name) + value)
        if other.references:
            self.line_size = other.line_size

    def clear(self) -> None:
        """Zero every counter in place, keeping the line size.

        Unlike building a fresh object, clearing preserves object identity,
        so externally shared aggregates (a split organization's combined
        stats, a caller-owned counter passed to ``Cache(stats=...)``) keep
        observing the cache after a warm-start reset.
        """
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, ClassCounts):
                value.references = 0
                value.misses = 0
            elif spec.name != "line_size":
                setattr(self, spec.name, 0)

    def snapshot(self) -> "CacheStats":
        """Deep copy of the current counters."""
        copy = CacheStats(line_size=self.line_size)
        copy.merge(self)
        return copy
