"""Command-line front end: ``repro-cachesim`` (or ``python -m repro``).

Subcommands map one-to-one onto the paper's experiments plus the basic
simulator operations::

    repro-cachesim list-traces
    repro-cachesim characterize ZGREP VCCOM
    repro-cachesim generate ZGREP -o zgrep.rtrc --length 100000
    repro-cachesim simulate ZGREP --size 16384 --split --purge 20000
    repro-cachesim campaign --traces VCCOM,ZGREP --sizes 1024,4096 --workers 4
    repro-cachesim serve --backend pool --cache-dir /shared/cache
    repro-cachesim campaign --traces VCCOM --remote http://127.0.0.1:8795
    repro-cachesim table1 --length 100000
    repro-cachesim table2
    repro-cachesim table3
    repro-cachesim table4 --length 60000
    repro-cachesim table5
    repro-cachesim fig2
    repro-cachesim fig3-4 --length 60000
    repro-cachesim validate
    repro-cachesim fudge
"""

from __future__ import annotations

import argparse
import sys

from . import analysis
from .analysis.table2 import table2_experiment
from .core import (
    CacheGeometry,
    FetchPolicy,
    SplitCache,
    UnifiedCache,
    WritePolicy,
    WriteStrategy,
    policy_factory,
    simulate,
)
from .trace import save_trace
from .workloads import catalog

__all__ = ["main"]


def _sizes(argument: str) -> list[int]:
    return [int(token) for token in argument.split(",")]


def _sampling_arg(argument: str):
    """``--sampling`` value: a fraction, or the literal ``representative``."""
    if argument.strip().lower() == "representative":
        return "representative"
    try:
        return float(argument)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a fraction in (0, 1] or 'representative', got {argument!r}"
        ) from None


def _add_length(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--length", type=int, default=None,
        help="references per trace (default: the paper's per-trace length)",
    )


def _add_mechanism_args(parser: argparse.ArgumentParser) -> None:
    """Miss-path mechanism flags shared by simulate and campaign."""
    p = parser.add_argument_group("miss-path mechanisms (docs/mechanisms.md)")
    p.add_argument("--victim", type=int, default=0, metavar="LINES",
                   help="fully associative victim cache of N lines")
    p.add_argument("--miss-cache", type=int, default=0, metavar="LINES",
                   help="fully associative miss cache of N lines")
    p.add_argument("--stream-buffers", type=int, default=0, metavar="N",
                   help="N sequential stream buffers on the miss path")
    p.add_argument("--stream-depth", type=int, default=4, metavar="LINES",
                   help="lines per stream buffer (default 4)")
    p.add_argument("--l2", type=int, default=None, metavar="BYTES",
                   help="unified, inclusive second-level cache capacity")
    p.add_argument("--l2-line", type=int, default=None, metavar="BYTES",
                   help="L2 line size (default: the primary line size)")
    p.add_argument("--l2-assoc", type=int, default=None, metavar="WAYS",
                   help="L2 associativity (default: fully associative)")


def _mechanism_config(args: argparse.Namespace):
    """Build the MechanismConfig the flags describe, or ``None``."""
    from .core import MechanismConfig

    config = MechanismConfig(
        victim_entries=args.victim,
        miss_entries=args.miss_cache,
        stream_buffers=args.stream_buffers,
        stream_depth=args.stream_depth,
        l2_size=args.l2,
        l2_line_size=args.l2_line,
        l2_associativity=args.l2_assoc,
    )
    return config if config.active else None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cachesim",
        description="Reproduction of Smith, 'Cache Evaluation and the "
        "Impact of Workload Choice' (ISCA 1985).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-traces", help="list the 57 catalog traces")

    p = sub.add_parser("study",
                       help="run a design-space study (line size or "
                       "associativity)")
    p.add_argument("dimension", choices=["linesize", "associativity"])
    p.add_argument("--capacity", type=int, default=8192,
                   help="capacity at which to print the study (bytes)")
    _add_length(p)

    p = sub.add_parser("machines",
                       help="list the paper's real machines; optionally "
                       "simulate a trace on one")
    p.add_argument("--on", default=None, metavar="MACHINE",
                   help="machine name to simulate (see the listing)")
    p.add_argument("--trace", default="VCCOM")
    _add_length(p)

    p = sub.add_parser("characterize", help="Table 2 rows for given traces")
    p.add_argument("traces", nargs="+")
    _add_length(p)

    p = sub.add_parser("generate", help="generate a trace to a file")
    p.add_argument("trace")
    p.add_argument("-o", "--output", required=True)
    _add_length(p)

    p = sub.add_parser(
        "campaign",
        help="run a trace x size simulation campaign in parallel, with "
        "result caching (see REPRO_WORKERS / REPRO_CACHE_DIR)",
    )
    p.add_argument("--traces", type=lambda s: s.split(","), default=None,
                   help="comma-separated trace names (default: all 57)")
    p.add_argument("--sizes", type=_sizes, default=None,
                   help="comma-separated cache sizes in bytes")
    p.add_argument("--line", type=int, default=16, help="line size in bytes")
    p.add_argument("--assoc", type=int, default=None,
                   help="set associativity (default: fully associative)")
    p.add_argument("--replacement", default="lru",
                   choices=["lru", "fifo", "random", "lfu"])
    p.add_argument("--write", default="copy-back",
                   choices=["copy-back", "write-through"])
    p.add_argument("--fetch", default="demand",
                   choices=["demand", "prefetch-always", "prefetch-tagged",
                            "stream"])
    p.add_argument("--split", action="store_true", help="split I/D caches")
    p.add_argument("--purge", type=int, default=None,
                   help="purge every N references (task switching)")
    _add_mechanism_args(p)
    p.add_argument("--stack", action="store_true",
                   help="use the one-pass LRU stack sweep per trace instead "
                   "of direct simulation (fully associative LRU only)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: REPRO_WORKERS or CPU count)")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (default: REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result cache")
    p.add_argument("--trace-store", default=None, metavar="DIR",
                   help="shared content-addressed trace store: each "
                   "distinct trace is generated once, stored as a "
                   "memory-mappable .rtrc file, and mapped by every "
                   "worker (default: REPRO_TRACE_STORE)")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="append JSONL lifecycle events to PATH, or '-' to "
                   "stream them to stdout (default: REPRO_EVENT_LOG)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="stream a per-cell progress line to stderr")
    p.add_argument("--remote", nargs="?", const="", default=None, metavar="URL",
                   help="submit the campaign to a running campaign service "
                   "(repro-cachesim serve) instead of executing locally, "
                   "and tail its SSE event stream "
                   "(default URL: REPRO_SERVICE_URL)")
    p.add_argument("--user", default=None,
                   help="user identity for --remote quota accounting "
                   "(default: $USER)")
    p.add_argument("--priority", type=int, default=0,
                   help="campaign priority for --remote (higher runs first)")
    p.add_argument("--retries", type=int, default=None,
                   help="transient-failure retries per cell "
                   "(default: REPRO_RETRIES or 2)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell wall-time limit, pool mode only "
                   "(default: REPRO_CELL_TIMEOUT or none)")
    p.add_argument("--sampling", type=_sampling_arg, default=None,
                   metavar="FRACTION|representative",
                   help="run the campaign sampled: a fraction measures "
                   "roughly that share of each trace's references; "
                   "'representative' clusters fixed windows by behavior "
                   "and replays one weighted medoid window per cluster "
                   "(see docs/sampling.md)")
    p.add_argument("--sampling-window", type=int, default=2000,
                   help="references per sampled window (default 2000)")
    p.add_argument("--clusters", type=int, default=8,
                   help="behavioral clusters for --sampling representative "
                   "(default 8)")
    p.add_argument("--sampling-mode", default="systematic",
                   choices=["systematic", "random", "stratified"],
                   help="how sampled windows are chosen")
    p.add_argument("--sampling-warmup", default="discard",
                   choices=["cold", "discard", "stitch"],
                   help="cold-start handling per sampled window")
    p.add_argument("--sampling-seed", type=int, default=0,
                   help="seed for window choice and the bootstrap")
    p.add_argument("--target-error", type=float, default=None, metavar="REL",
                   help="error budget: grow the sample until every CI "
                   "half-width is within REL of its estimate "
                   "(implies --sampling; default start fraction 0.05)")
    _add_length(p)

    p = sub.add_parser(
        "serve",
        help="run the campaign service: an HTTP/SSE API that schedules, "
        "dedupes, and executes campaigns for many concurrent clients "
        "(see docs/service.md)",
    )
    p.add_argument("--host", default=None,
                   help="bind address (default: REPRO_SERVICE_HOST or 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="bind port; 0 picks a free one "
                   "(default: REPRO_SERVICE_PORT or 8795)")
    p.add_argument("--backend", default=None,
                   choices=["inline", "pool", "fleet"],
                   help="execution backend (default: REPRO_SERVICE_BACKEND "
                   "or pool)")
    p.add_argument("--workers", type=int, default=None,
                   help="backend capacity (default: REPRO_WORKERS or CPU count)")
    p.add_argument("--cache-dir", default=None,
                   help="shared result-cache directory; enables cross-process "
                   "dedupe (default: REPRO_CACHE_DIR)")
    p.add_argument("--trace-store", default=None, metavar="DIR",
                   help="shared content-addressed trace store for the workers "
                   "(default: REPRO_TRACE_STORE)")
    p.add_argument("--quota", type=int, default=None,
                   help="max outstanding campaigns per user "
                   "(default: REPRO_SERVICE_QUOTA or unlimited)")
    p.add_argument("--max-active", type=int, default=None,
                   help="campaigns run concurrently "
                   "(default: REPRO_SERVICE_ACTIVE or 4)")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="service-global JSONL event log ('-' = stdout)")

    p = sub.add_parser("simulate", help="simulate one trace / cache configuration")
    p.add_argument("trace")
    p.add_argument("--size", type=int, default=16384, help="capacity in bytes")
    p.add_argument("--line", type=int, default=16, help="line size in bytes")
    p.add_argument("--assoc", type=int, default=None,
                   help="set associativity (default: fully associative)")
    p.add_argument("--replacement", default="lru",
                   choices=["lru", "fifo", "random", "lfu"])
    p.add_argument("--write", default="copy-back",
                   choices=["copy-back", "write-through"])
    p.add_argument("--fetch", default="demand",
                   choices=["demand", "prefetch-always", "prefetch-tagged",
                            "stream"])
    p.add_argument("--split", action="store_true", help="split I/D caches")
    p.add_argument("--purge", type=int, default=None,
                   help="purge every N references (task switching)")
    _add_mechanism_args(p)
    _add_length(p)

    p = sub.add_parser(
        "mechanisms",
        help="miss-path mechanism study: victim/miss caches, stream "
        "buffers, and a two-level hierarchy vs. the plain baseline",
    )
    p.add_argument("--traces", type=lambda s: s.split(","), default=None,
                   help="comma-separated trace names (default: all 57)")
    p.add_argument("--size", type=int, default=4096, help="primary bytes")
    p.add_argument("--line", type=int, default=16, help="line size in bytes")
    p.add_argument("--assoc", type=int, default=1,
                   help="primary associativity (default: direct-mapped; "
                   "0 = fully associative)")
    p.add_argument("--no-l2", action="store_true",
                   help="skip the two-level variant")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: REPRO_WORKERS or CPU count)")
    _add_length(p)

    for name, help_text in [
        ("table1", "Table 1 / Figure 1: unified miss ratios for all traces"),
        ("table2", "Table 2: trace characteristics"),
        ("table3", "Table 3: dirty-push fractions"),
        ("table4", "Table 4 + Figures 5-10: the prefetch study"),
        ("table5", "Table 5: design target miss ratios"),
        ("fig2", "Figure 2: [Hard80] MVS curves"),
        ("fig3-4", "Figures 3-4: split I/D miss ratios"),
        ("validate", "Section 4.1 validations (Clark, Z80000, 68020)"),
        ("fudge", "Section 4 cross-architecture fudge factors"),
        ("report", "run everything and emit a Markdown experiment report"),
    ]:
        p = sub.add_parser(name, help=help_text)
        _add_length(p)
        if name in ("table1", "fig3-4", "table4"):
            p.add_argument("--sizes", type=_sizes, default=None,
                           help="comma-separated cache sizes in bytes")
        if name == "report":
            p.add_argument("--no-prefetch", action="store_true",
                           help="skip the expensive prefetch study")
            p.add_argument("-o", "--output", default=None,
                           help="write the report to a file instead of stdout")
    return parser


def _cmd_list_traces() -> None:
    rows = []
    for name in catalog.names():
        params = catalog.get(name)
        rows.append(
            (name, params.architecture, params.language,
             catalog.default_length(name), params.description[:60])
        )
    print(analysis.render_table(
        ["trace", "architecture", "language", "length", "description"], rows,
        title="The 57 catalog traces (49 programs; LISP/VAXIMA in 5 sections)",
    ))


def _cmd_machines(args: argparse.Namespace) -> None:
    from .machines import ALL_MACHINES

    if args.on is None:
        rows = [
            (m.name, m.capacity, m.line_size,
             m.associativity if m.associativity else "full",
             "sector" if m.sector_size else
             ("split" if m.split else "unified"),
             m.write_policy.strategy.value)
            for m in ALL_MACHINES.values()
        ]
        print(analysis.render_table(
            ["machine", "bytes", "line", "ways", "organization", "write"],
            rows, title="Machines described in the paper",
        ))
        return
    try:
        machine = ALL_MACHINES[args.on]
    except KeyError:
        raise SystemExit(
            f"unknown machine {args.on!r}; run 'machines' for the list"
        ) from None
    trace = catalog.generate(args.trace, args.length)
    report = simulate(trace, machine.build(), purge_interval=20_000)
    print(f"{machine.name}: miss ratio {report.miss_ratio:.4f} on "
          f"{args.trace} ({report.references} references)")
    if machine.notes:
        print(f"  ({machine.notes})")


def _cmd_simulate(args: argparse.Namespace) -> None:
    trace = catalog.generate(args.trace, args.length)
    geometry = CacheGeometry(args.size, args.line, args.assoc)
    if args.write == "copy-back":
        write = WritePolicy(WriteStrategy.COPY_BACK, allocate_on_write=True)
    else:
        write = WritePolicy(WriteStrategy.WRITE_THROUGH, allocate_on_write=False)
    fetch = FetchPolicy(args.fetch)
    replacement = policy_factory(args.replacement)
    config = _mechanism_config(args)
    miss_path = config.build(args.line) if config is not None else None
    if args.split:
        organization = SplitCache(
            geometry, replacement=replacement, write_policy=write,
            fetch_policy=fetch, miss_path=miss_path,
        )
    else:
        organization = UnifiedCache(
            geometry, replacement=replacement, write_policy=write,
            fetch_policy=fetch, miss_path=miss_path,
        )
    report = simulate(trace, organization, purge_interval=args.purge)
    stats = report.overall
    print(f"trace            : {report.trace_name} ({report.references} references)")
    print(f"cache            : {geometry.describe()}"
          f"{' (split I/D)' if args.split else ''}")
    print(f"policies         : {args.replacement}, {args.write}, {args.fetch}")
    print(f"miss ratio       : {report.miss_ratio:.4f}")
    print(f"  instruction    : {report.instruction_miss_ratio:.4f}")
    print(f"  data           : {report.data_miss_ratio:.4f}")
    print(f"memory traffic   : {stats.memory_traffic_bytes} bytes "
          f"({stats.lines_fetched} fetches, {stats.lines_written_back} write-backs)")
    print(f"dirty data pushes: {stats.dirty_data_push_fraction:.3f} of {stats.data_pushes}")
    if report.mechanisms:
        print(f"effective miss   : {report.effective_miss_ratio:.4f} "
              f"(assembly, incl. miss-path mechanisms)")
        print(f"effective traffic: {report.effective_memory_traffic_bytes} bytes")
        for name, block in report.mechanisms:
            if name == "l2":
                detail = (f"local miss ratio {block.miss_ratio:.4f}, "
                          f"{block.lines_fetched} memory fetches, "
                          f"{block.dirty_pushes} write-backs")
            else:
                hit = 1.0 - block.miss_ratio
                detail = (f"hit rate {hit:.4f} over {block.references} "
                          f"probed misses")
                if name == "stream-buffers":
                    detail += f", {block.prefetches} lines prefetched"
            print(f"  {name:15s}: {detail}")


def _cmd_campaign(args: argparse.Namespace) -> int:
    import os

    from .campaign import run_campaign
    from .core.jobs import (
        CampaignCell,
        MechanismStudyJob,
        SimulateJob,
        StackSweepJob,
        TraceSpec,
    )
    from .trace.store import TRACE_STORE_ENV

    if args.trace_store:
        # Exported (not passed) so pool workers inherit it and resolve
        # their traces through the same store the parent primed.
        os.environ[TRACE_STORE_ENV] = args.trace_store

    names = args.traces if args.traces is not None else catalog.names()
    for name in names:
        catalog.get(name)  # fail fast on unknown traces
    sizes = args.sizes or list(analysis.PAPER_CACHE_SIZES)
    mechanisms = _mechanism_config(args)
    if mechanisms is not None and args.stack:
        raise SystemExit(
            "--stack is a plain LRU sweep; miss-path mechanism flags "
            "need direct simulation (drop --stack)"
        )

    cells = []
    if args.stack:
        job = StackSweepJob(
            sizes=tuple(sizes), line_size=args.line, purge_interval=args.purge
        )
        for name in names:
            cells.append(
                CampaignCell(
                    label=name, trace=TraceSpec.catalog(name, args.length), job=job
                )
            )
    else:
        for name in names:
            spec = TraceSpec.catalog(name, args.length)
            for size in sizes:
                options = dict(
                    size=size,
                    line_size=args.line,
                    associativity=args.assoc,
                    replacement=args.replacement,
                    write=args.write,
                    fetch=args.fetch,
                    split=args.split,
                    purge_interval=args.purge,
                )
                job = (
                    SimulateJob(**options)
                    if mechanisms is None
                    else MechanismStudyJob(mechanisms=mechanisms, **options)
                )
                cells.append(
                    CampaignCell(label=f"{name}/{size}", trace=spec, job=job)
                )

    cache = False if args.no_cache else (args.cache_dir or None)

    plan = None
    if args.sampling == "representative":
        if args.target_error is not None:
            raise SystemExit(
                "--target-error calibrates interval plans; representative "
                "sampling reports a fixed deterministic bound instead"
            )
        from .sampling import RepresentativeSampling

        plan = RepresentativeSampling(
            clusters=args.clusters,
            window=args.sampling_window,
            seed=args.sampling_seed,
        )
    elif args.sampling is not None or args.target_error is not None:
        from .sampling import IntervalSampling

        plan = IntervalSampling(
            fraction=args.sampling if args.sampling is not None else 0.05,
            window=args.sampling_window,
            mode=args.sampling_mode,
            warmup=args.sampling_warmup,
            seed=args.sampling_seed,
            target_rel_err=args.target_error,
        )

    if args.remote is not None:
        if args.target_error is not None:
            raise SystemExit(
                "--target-error calibration runs locally; use a fixed "
                "--sampling fraction (or 'representative') with --remote"
            )
        return _run_remote_campaign(args, cells, sizes, mechanisms, plan)

    progress = None
    if args.verbose:
        total = len(cells)
        done = iter(range(1, total + 1))

        def progress(outcome):
            if outcome.error is not None:
                status = f"FAILED ({outcome.error})"
            elif outcome.cached:
                status = "cached"
            else:
                status = f"{outcome.wall_seconds:.2f}s"
            print(f"[{next(done)}/{total}] {outcome.label}: {status}",
                  file=sys.stderr, flush=True)

    result = run_campaign(
        cells, workers=args.workers, cache=cache, progress=progress,
        retries=args.retries, timeout=args.timeout, events=args.events,
        sampling=plan,
    )

    kind = "stack sweep" if args.stack else "simulation"
    if plan is not None:
        # Sampled campaigns render estimate ± CI cells.
        rows = []
        if args.stack:
            for outcome in result.outcomes:
                cells_text = (
                    [str(e) for e in outcome.sampling.estimates]
                    if outcome.ok
                    else ["failed"] * len(sizes)
                )
                rows.append((outcome.label, *cells_text))
        else:
            by_name: dict[str, list[str]] = {}
            for outcome in result.outcomes:
                name = outcome.label.rsplit("/", 1)[0]
                by_name.setdefault(name, []).append(
                    str(outcome.sampling.estimates[0]) if outcome.ok else "failed"
                )
            rows = [(name, *cells_text) for name, cells_text in by_name.items()]
        print(analysis.render_table(
            ["trace \\ bytes", *[str(s) for s in sizes]], rows,
            title=f"Sampled campaign miss ratios ({kind}, "
            f"{int(plan.confidence * 100)}% CI)",
        ))
        sampled = [o.sampling for o in result.outcomes if o.ok and o.sampling]
        if sampled:
            fraction = sum(s.sampled_fraction for s in sampled) / len(sampled)
            replayed = sum(s.replayed_references for s in sampled)
            total = sum(s.total_references for s in sampled)
            print()
            print(f"sampled {fraction:.1%} of references per cell on average "
                  f"({replayed:,} replayed of {total:,} represented)")
            rounds = max(s.calibration_rounds for s in sampled)
            if args.target_error is not None:
                met = sum(1 for s in sampled if s.target_met)
                print(f"error budget {args.target_error:g}: met in "
                      f"{met}/{len(sampled)} cell(s), "
                      f"up to {rounds} calibration round(s)")
    else:
        # Failed cells render as NaN so partial campaigns still tabulate.
        series: dict[str, list[float]] = {}
        if args.stack:
            for outcome in result.outcomes:
                series[outcome.label] = (
                    list(outcome.value) if outcome.ok else [float("nan")] * len(sizes)
                )
        else:
            for outcome in result.outcomes:
                name = outcome.label.rsplit("/", 1)[0]
                series.setdefault(name, []).append(
                    (outcome.value.effective_miss_ratio
                     if mechanisms is not None
                     else outcome.value.miss_ratio)
                    if outcome.ok else float("nan")
                )
        if mechanisms is not None:
            kind += ", effective miss ratio with miss-path mechanisms"
        print(analysis.render_series(
            "trace \\ bytes", sizes, series,
            title=f"Campaign miss ratios ({kind})",
        ))
    print()
    print(result.summary())
    if result.failed_cells:
        print(f"{result.failed_cells} cell(s) failed; re-run to retry just "
              "the failures (successes are cached)", file=sys.stderr)
        return 1
    return 0


def _run_remote_campaign(
    args: argparse.Namespace, cells, sizes, mechanisms, sampling=None
) -> int:
    """Submit a campaign to a running service and tail its SSE stream."""
    import os

    from .campaign import EventLog
    from .service import SERVICE_URL_ENV, ServiceClient, ServiceError

    url = args.remote or os.environ.get(SERVICE_URL_ENV)
    if not url:
        raise SystemExit(
            f"--remote needs a service URL (or set {SERVICE_URL_ENV}); "
            "start one with: repro-cachesim serve"
        )
    client = ServiceClient(url, user=args.user)
    log = EventLog(args.events) if args.events is not None else None
    total = len(cells)
    seen = {"cells": 0}

    def on_event(event):
        if log is not None:
            fields = {k: v for k, v in event.items() if k not in ("event", "time")}
            log.emit(event["event"], **fields)
        if args.verbose and event["event"] in ("cell_finished", "cell_failed"):
            seen["cells"] += 1
            if event["event"] == "cell_failed":
                status = f"FAILED ({event.get('error')}: {event.get('message')})"
            elif event.get("source") == "run":
                status = f"{event.get('wall_seconds', 0.0):.2f}s"
            else:
                status = event.get("source", "cached")
            print(f"[{seen['cells']}/{total}] {event.get('label')}: {status}",
                  file=sys.stderr, flush=True)

    try:
        campaign_id = client.submit_cells(
            cells, priority=args.priority, sampling=sampling
        )
        print(f"submitted campaign {campaign_id} to {url} "
              f"({total} cells)", file=sys.stderr)
        final = client.wait(campaign_id, on_event=on_event)
    except ServiceError as exc:
        raise SystemExit(str(exc)) from None
    finally:
        if log is not None:
            log.close()

    results = final.get("results") or []
    kind = "stack sweep" if args.stack else "simulation"
    metric = "effective_miss_ratio" if mechanisms is not None else "miss_ratio"
    series: dict[str, list[float]] = {}
    if args.stack:
        for outcome in results:
            curve = (outcome.get("value") or {}).get("curve") if outcome["ok"] else None
            series[outcome["label"]] = [
                float("nan") if v is None else v
                for v in (curve or [None] * len(sizes))
            ]
    else:
        for outcome in results:
            name = outcome["label"].rsplit("/", 1)[0]
            value = (outcome.get("value") or {}) if outcome["ok"] else {}
            ratio = value.get(metric, value.get("miss_ratio"))
            series.setdefault(name, []).append(
                float("nan") if ratio is None else ratio
            )
    if mechanisms is not None:
        kind += ", effective miss ratio with miss-path mechanisms"
    print(analysis.render_series(
        "trace \\ bytes", sizes, series,
        title=f"Remote campaign miss ratios ({kind})",
    ))
    print()
    print(f"campaign {final['id']} [{final['status']}]: {final['cells']} cells "
          f"({final['cached']} cached, {final['shared']} shared, "
          f"{final['simulated']} simulated, {final['failed']} failed)")
    if final["failed"] or final["status"] != "done":
        print("some cells failed on the service; see its event log",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from .service import Scheduler, create_backend
    from .service.http import DEFAULT_HOST, DEFAULT_PORT, ServiceServer
    from .trace.store import TRACE_STORE_ENV

    if args.trace_store:
        os.environ[TRACE_STORE_ENV] = args.trace_store
    host = args.host or os.environ.get("REPRO_SERVICE_HOST") or DEFAULT_HOST
    port = args.port
    if port is None:
        port = int(os.environ.get("REPRO_SERVICE_PORT") or DEFAULT_PORT)
    backend_name = (
        args.backend or os.environ.get("REPRO_SERVICE_BACKEND") or "pool"
    )
    backend = create_backend(backend_name, args.workers)
    scheduler = Scheduler(
        backend,
        cache=args.cache_dir,
        quota=args.quota,
        max_active=args.max_active,
        events=args.events,
    )

    async def body():
        server = ServiceServer(scheduler, host, port)
        await server.start()
        cache = (
            scheduler.cache.directory if scheduler.cache is not None else "disabled"
        )
        print(f"campaign service listening on {server.url} "
              f"(backend={backend_name} capacity={backend.capacity} "
              f"cache={cache})", file=sys.stderr, flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(body())
    except KeyboardInterrupt:
        print("campaign service stopped", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    command = args.command
    if command == "list-traces":
        _cmd_list_traces()
    elif command == "machines":
        _cmd_machines(args)
    elif command == "study":
        if args.dimension == "linesize":
            study = analysis.line_size_study(
                capacities=(args.capacity,), length=args.length
            )
        else:
            study = analysis.associativity_study(
                capacities=(args.capacity,), length=args.length
            )
        print(study.render(args.capacity))
    elif command == "characterize":
        result = table2_experiment(args.traces, args.length)
        print(result.render())
    elif command == "generate":
        trace = catalog.generate(args.trace, args.length)
        save_trace(trace, args.output)
        print(f"wrote {len(trace)} references to {args.output}")
    elif command == "simulate":
        _cmd_simulate(args)
    elif command == "campaign":
        return _cmd_campaign(args)
    elif command == "serve":
        return _cmd_serve(args)
    elif command == "mechanisms":
        study = analysis.mechanism_study(
            workloads=args.traces,
            size=args.size,
            line_size=args.line,
            associativity=args.assoc if args.assoc else None,
            include_l2=not args.no_l2,
            length=args.length,
            workers=args.workers,
        )
        print(study.summary())
    elif command == "table1":
        result = analysis.table1_experiment(sizes=args.sizes or analysis.PAPER_CACHE_SIZES,
                                            length=args.length)
        print(result.render())
    elif command == "table2":
        print(table2_experiment(length=args.length).render())
    elif command == "table3":
        print(analysis.table3_experiment(length=args.length).render())
    elif command == "table4":
        study = analysis.prefetch_study(sizes=args.sizes or analysis.PAPER_CACHE_SIZES,
                                        length=args.length)
        print(study.render_table4())
        print()
        print(study.render_figures())
    elif command == "table5":
        targets = analysis.design_target_estimate(length=args.length)
        print(targets.render())
    elif command == "fig2":
        sizes = list(analysis.PAPER_CACHE_SIZES)
        print(analysis.render_series(
            "curve \\ bytes", sizes, analysis.figure2_series(sizes),
            title="Figure 2: [Hard80] MVS miss ratios",
        ))
    elif command == "fig3-4":
        result = analysis.figures_3_and_4(sizes=args.sizes or analysis.PAPER_CACHE_SIZES,
                                          length=args.length)
        print(result.render())
    elif command == "validate":
        targets = analysis.design_target_estimate(length=args.length)
        print("Clark [Clar83] comparison:")
        for key, value in analysis.clark_comparison(targets).items():
            print(f"  {key:32s} {value:.4f}")
        print("Z80000 [Alpe83] comparison (hit ratios):")
        for subblock, row in analysis.z80000_comparison(args.length).items():
            print(f"  {subblock:2d}B sub-blocks: " +
                  "  ".join(f"{k}={v:.3f}" for k, v in row.items()))
        print("68020 256B/4B-line instruction cache (paper predicts 0.2-0.6):")
        for key, value in analysis.estimate_68020_icache(args.length).items():
            print(f"  {key:12s} {value:.3f}")
    elif command == "fudge":
        print(analysis.fudge_table(length=args.length))
    elif command == "report":
        text = analysis.generate_report(
            length=args.length,
            include_prefetch=not args.no_prefetch,
            progress=lambda stage: print(f"[report] {stage}", file=sys.stderr),
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}")
        else:
            print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
