"""Throughput benchmarks for the simulator core itself.

These are conventional pytest-benchmark microbenchmarks (multiple rounds)
measuring the three hot paths: the per-access cache engine, the one-pass
stack-distance sweep, and trace generation.
"""

import pytest

from repro.core import CacheGeometry, UnifiedCache, lru_miss_ratio_curve, simulate
from repro.workloads import catalog
from repro.workloads.generator import SyntheticWorkload

REFS = 30_000


@pytest.fixture(scope="module")
def trace():
    return catalog.generate("VCCOM", REFS)


def test_simulator_throughput(benchmark, trace):
    def run():
        return simulate(trace, UnifiedCache(CacheGeometry(16384, 16)))

    report = benchmark(run)
    assert report.references == REFS


def test_stack_distance_throughput(benchmark, trace):
    sizes = [32 * 2**i for i in range(12)]

    def run():
        return lru_miss_ratio_curve(trace, sizes)

    curve = benchmark(run)
    assert len(curve) == 12


def test_generator_throughput(benchmark):
    workload = SyntheticWorkload(catalog.get("VCCOM"))

    def run():
        return workload.generate(REFS)

    generated = benchmark(run)
    assert len(generated) == REFS
