"""Throughput benchmarks for the simulator core itself.

Conventional pytest-benchmark microbenchmarks (multiple rounds) over the
hot paths: the specialized replay kernels (one per replacement policy,
plus Belady's MIN), the generic per-access engine, mechanism-attached
replay (victim/miss caches, stream buffers, a two-level sweep), the
one-pass stack-distance sweep, the all-associativity surface kernel, trace
generation — both engines, per workload family, at ``REPRO_BENCH_GEN_REFS``
references — the shared trace store's cold-write and warm-mmap paths,
and the ``.rtrc`` load paths (memory-mapped vs eager copy).

Besides the usual pytest-benchmark console table, the module writes a
machine-readable summary — references/second per hot path — to
``benchmarks/results/BENCH_core_throughput.json`` so CI can archive and
diff throughput without parsing terminal output.  ``REPRO_BENCH_REFS``
scales the trace length (default 30 000; CI's smoke step uses a shorter
setting).
"""

import os

import pytest

from common import merge_json_result

from repro.core import (
    CacheGeometry,
    MechanismConfig,
    UnifiedCache,
    associativity_miss_surface,
    belady_min_misses,
    lru_miss_ratio_curve,
    simulate,
)
from repro.core.replacement import policy_factory
from repro.trace.io import read_binary_trace, write_binary_trace
from repro.trace.store import TraceStore
from repro.workloads import catalog
from repro.workloads.generator import SyntheticWorkload, trace_identity

REFS = int(os.environ.get("REPRO_BENCH_REFS", "30000"))

#: Trace length for the engine-comparison generation benchmarks.  The
#: vectorized engine amortizes per-call setup over the whole trace, so
#: short lengths understate it; 200k is past the knee without making the
#: scalar oracle runs (~0.4 Mrefs/s) dominate the suite.
GEN_REFS = int(os.environ.get("REPRO_BENCH_GEN_REFS", "200000"))

#: One catalog entry per workload family / architecture group.
GEN_FAMILIES = ("VCCOM", "FGO1", "TWOD", "ZGREP")

_ASSOC_WAYS = (1, 2, 4, 8, None)
_ASSOC_CAPACITIES = (1024, 8192)


@pytest.fixture(scope="module")
def trace():
    return catalog.generate("VCCOM", REFS)


@pytest.fixture(scope="module")
def trace_file(trace, tmp_path_factory):
    """The benchmark trace saved as a version-2 ``.rtrc`` file."""
    path = tmp_path_factory.mktemp("rtrc") / "bench.rtrc"
    write_binary_trace(trace, path)
    return path


@pytest.fixture(scope="module")
def throughput_log():
    """Collects per-path refs/sec; written to JSON when the module ends."""
    entries = {}
    yield entries
    # Merge-update: a partial run (``pytest -k ...``) must not clobber
    # paths a previous full pass recorded.
    merge_json_result(
        "BENCH_core_throughput",
        {"references_per_run": REFS, "paths": entries},
        merge_keys=("paths",),
    )


def _record(throughput_log, name, benchmark, references):
    mean = benchmark.stats.stats.mean
    throughput_log[name] = {
        "mean_seconds": mean,
        "refs_per_second": references / mean if mean else 0.0,
    }


def test_simulator_kernel_throughput(benchmark, trace, throughput_log):
    # Default engine selection: the specialized LRU demand-fetch replay.
    def run():
        return simulate(trace, UnifiedCache(CacheGeometry(16384, 16)))

    report = benchmark(run)
    assert report.references == REFS
    _record(throughput_log, "simulator_kernel", benchmark, REFS)


def test_simulator_fifo_kernel_throughput(benchmark, trace, throughput_log):
    def run():
        return simulate(
            trace,
            UnifiedCache(CacheGeometry(16384, 16, 4), replacement=policy_factory("fifo")),
            engine="kernel",
        )

    report = benchmark(run)
    assert report.references == REFS
    _record(throughput_log, "simulator_kernel_fifo", benchmark, REFS)


def test_simulator_random_kernel_throughput(benchmark, trace, throughput_log):
    def run():
        return simulate(
            trace,
            UnifiedCache(
                CacheGeometry(16384, 16, 4), replacement=policy_factory("random", seed=7)
            ),
            engine="kernel",
        )

    report = benchmark(run)
    assert report.references == REFS
    _record(throughput_log, "simulator_kernel_random", benchmark, REFS)


def test_opt_kernel_throughput(benchmark, trace, throughput_log):
    lines = trace.compiled(16).lines

    def run():
        return belady_min_misses(lines, 1024, num_sets=256)

    misses = benchmark(run)
    assert 0 < misses <= len(lines)
    _record(throughput_log, "opt_min", benchmark, REFS)


def test_simulator_generic_throughput(benchmark, trace, throughput_log):
    def run():
        return simulate(trace, UnifiedCache(CacheGeometry(16384, 16)), engine="generic")

    report = benchmark(run)
    assert report.references == REFS
    _record(throughput_log, "simulator_generic", benchmark, REFS)


def test_simulator_victim_cache_throughput(benchmark, trace, throughput_log):
    # Mechanism-carrying organizations always replay on the generic
    # engine; this pins the cost of a victim cache on the miss path.
    def run():
        return simulate(
            trace,
            UnifiedCache(
                CacheGeometry(16384, 16, 1),
                miss_path=MechanismConfig(victim_entries=4).build(16),
            ),
        )

    report = benchmark(run)
    assert report.references == REFS
    assert "victim-cache" in report.mechanism_names
    _record(throughput_log, "simulator_victim_cache", benchmark, REFS)


def test_simulator_miss_cache_throughput(benchmark, trace, throughput_log):
    def run():
        return simulate(
            trace,
            UnifiedCache(
                CacheGeometry(16384, 16, 1),
                miss_path=MechanismConfig(miss_entries=4).build(16),
            ),
        )

    report = benchmark(run)
    assert report.references == REFS
    assert "miss-cache" in report.mechanism_names
    _record(throughput_log, "simulator_miss_cache", benchmark, REFS)


def test_simulator_stream_buffers_throughput(benchmark, trace, throughput_log):
    def run():
        return simulate(
            trace,
            UnifiedCache(
                CacheGeometry(16384, 16, 1),
                miss_path=MechanismConfig(stream_buffers=4, stream_depth=4).build(16),
            ),
        )

    report = benchmark(run)
    assert report.references == REFS
    assert "stream-buffers" in report.mechanism_names
    _record(throughput_log, "simulator_stream_buffers", benchmark, REFS)


def test_simulator_two_level_sweep_throughput(benchmark, trace, throughput_log):
    # A small two-level sweep: the same trace through DL1+L2 at several
    # primary sizes (the hierarchy study's inner loop).
    sizes = (1024, 4096, 16384)

    def run():
        reports = []
        for size in sizes:
            organization = UnifiedCache(
                CacheGeometry(size, 16, 1),
                miss_path=MechanismConfig(l2_size=size * 16, l2_line_size=32).build(16),
            )
            reports.append(simulate(trace, organization))
        return reports

    reports = benchmark(run)
    assert all("l2" in r.mechanism_names for r in reports)
    # One run replays the trace once per primary size.
    _record(throughput_log, "simulator_two_level_sweep", benchmark, REFS * len(sizes))


def test_stack_distance_throughput(benchmark, trace, throughput_log):
    sizes = [32 * 2**i for i in range(12)]

    def run():
        return lru_miss_ratio_curve(trace, sizes)

    curve = benchmark(run)
    assert len(curve) == 12
    _record(throughput_log, "stack_distance_sweep", benchmark, REFS)


def test_associativity_surface_throughput(benchmark, trace, throughput_log):
    def run():
        return associativity_miss_surface(trace, _ASSOC_WAYS, _ASSOC_CAPACITIES)

    surface = benchmark(run)
    assert surface.shape == (len(_ASSOC_WAYS), len(_ASSOC_CAPACITIES))
    # One run covers the whole grid; refs/sec is per grid, not per cell.
    _record(throughput_log, "associativity_surface", benchmark, REFS)


def test_trace_load_mmap(benchmark, trace, trace_file, throughput_log):
    def run():
        return read_binary_trace(trace_file, mmap=True)

    loaded = benchmark(run)
    assert len(loaded) == len(trace)
    _record(throughput_log, "trace_load_mmap", benchmark, REFS)


def test_trace_load_copy(benchmark, trace, trace_file, throughput_log):
    def run():
        return read_binary_trace(trace_file)

    loaded = benchmark(run)
    assert len(loaded) == len(trace)
    _record(throughput_log, "trace_load_copy", benchmark, REFS)


def test_generator_throughput(benchmark, throughput_log):
    workload = SyntheticWorkload(catalog.get("VCCOM"))

    def run():
        return workload.generate(REFS)

    generated = benchmark(run)
    assert len(generated) == REFS
    _record(throughput_log, "trace_generator", benchmark, REFS)


@pytest.mark.parametrize("family", GEN_FAMILIES)
def test_generation_vectorized_throughput(benchmark, family, throughput_log):
    workload = SyntheticWorkload(catalog.get(family))
    workload.generate(GEN_REFS, engine="vectorized")  # warm code + page cache

    def run():
        return workload.generate(GEN_REFS, engine="vectorized")

    generated = benchmark(run)
    assert len(generated) == GEN_REFS
    _record(throughput_log, f"generation_vectorized_{family}", benchmark, GEN_REFS)


@pytest.mark.parametrize("family", GEN_FAMILIES)
def test_generation_reference_throughput(benchmark, family, throughput_log):
    # The scalar oracle runs ~10-20x slower, so it gets a tenth of the
    # references; refs/sec in the report stays directly comparable.
    refs = max(1000, GEN_REFS // 10)
    workload = SyntheticWorkload(catalog.get(family))

    def run():
        return workload.generate(refs, engine="reference")

    generated = benchmark(run)
    assert len(generated) == refs
    _record(throughput_log, f"generation_reference_{family}", benchmark, refs)


def test_trace_store_cold_write(benchmark, trace, tmp_path_factory, throughput_log):
    # Cold path: the store serializes an already-built trace and maps it
    # back (generation cost is benchmarked separately above).
    identity = trace_identity(catalog.get("VCCOM"), REFS)
    counter = iter(range(10**9))

    def run():
        store = TraceStore(tmp_path_factory.mktemp(f"store{next(counter)}"))
        resolved, hit = store.get_or_create(identity, lambda: trace)
        assert hit is False
        return resolved

    resolved = benchmark(run)
    assert len(resolved) == len(trace)
    _record(throughput_log, "trace_store_cold", benchmark, REFS)


def test_trace_store_warm_load(benchmark, trace, tmp_path_factory, throughput_log):
    store = TraceStore(tmp_path_factory.mktemp("store_warm"))
    identity = trace_identity(catalog.get("VCCOM"), REFS)
    store.get_or_create(identity, lambda: trace)

    def run():
        resolved, hit = store.get_or_create(
            identity, lambda: pytest.fail("warm load must not rebuild")
        )
        assert hit is True
        return resolved

    resolved = benchmark(run)
    assert len(resolved) == len(trace)
    _record(throughput_log, "trace_store_warm", benchmark, REFS)
