"""Ablation 2: sensitivity to the task-switch quantum.

Table 3's caveat: "We believe that the value 20,000 is reasonable and
representative, but the results are definitely sensitive to that figure."
This ablation sweeps the purge interval and shows the sensitivity: shorter
quanta mean more cold restarts and higher miss ratios, with the effect
largest for big caches (which lose the most state per purge).
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import render_series, unified_lru_sweep
from repro.workloads import catalog

QUANTA = (5_000, 10_000, 20_000, 40_000, None)
SIZES = (1024, 4096, 16384)


def test_ablation_purge_interval(benchmark):
    def experiment():
        trace = catalog.generate("VCCOM", bench_length())
        rows = {}
        for quantum in QUANTA:
            label = f"quantum={quantum or 'none'}"
            curve = unified_lru_sweep(trace, SIZES, purge_interval=quantum)
            rows[label] = list(curve.miss_ratios)
        return rows

    rows = run_once(benchmark, experiment)

    text = render_series(
        "quantum \\ bytes", list(SIZES), rows,
        title="Ablation: miss ratio vs task-switch quantum (VCCOM)",
    )
    save_result("ablation_purge", text)
    print()
    print(text)

    # Monotone: purging more often can only hurt.
    matrix = np.array([rows[f"quantum={q or 'none'}"] for q in QUANTA])
    for column in matrix.T:
        assert (np.diff(column) <= 1e-9).all()

    # The sensitivity is real: 5k vs no purging differs substantially at
    # 16K, which is the paper's caveat in numbers.
    no_purge = rows["quantum=none"][-1]
    fast_switch = rows["quantum=5000"][-1]
    assert fast_switch > 1.5 * no_purge
