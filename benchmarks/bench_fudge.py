"""Section 4.3: cross-architecture fudge factors.

Regenerates the M1->M2 translation matrix for the reference-mix and
branch-frequency statistics and checks the paper's directional claims:
instruction:data ratio runs from ~1:1 (complex 32-bit) to ~3:1 (simple),
branch frequency moves with architecture complexity.
"""

from common import bench_length, run_once, save_result

from repro.analysis import ArchitectureEstimator, fudge_factor, fudge_table


def test_fudge_factors(benchmark):
    def experiment():
        table = fudge_table(length=bench_length())
        estimator = ArchitectureEstimator(length=bench_length())
        return table, estimator

    table, estimator = run_once(benchmark, experiment)

    save_result("fudge_factors", table)
    print()
    print(table)

    # VAX -> CDC: instruction share rises ~1.5x, branches drop hard.
    mix = fudge_factor("instruction_fraction", "VAX 11/780", "CDC 6400",
                       length=bench_length())
    branch = fudge_factor("branch_fraction", "VAX 11/780", "CDC 6400",
                          length=bench_length())
    assert 1.3 < mix < 1.8
    assert branch < 0.5

    # The complexity interpolation reproduces the 1:1 .. 3:1 band.
    complex_ratio = estimator.estimate(1.0).instruction_to_data_ratio
    simple_ratio = estimator.estimate(0.0).instruction_to_data_ratio
    assert complex_ratio < 1.6
    assert simple_ratio > 2.2

    lines = [
        "instruction:data ratio by complexity (paper: ~1:1 complex to ~3:1 simple)",
        f"  complexity 1.0 -> {complex_ratio:.2f}",
        f"  complexity 0.5 -> {estimator.estimate(0.5).instruction_to_data_ratio:.2f}",
        f"  complexity 0.0 -> {simple_ratio:.2f}",
    ]
    save_result("fudge_interpolation", "\n".join(lines))
    print("\n".join(lines))
