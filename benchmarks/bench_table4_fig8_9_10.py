"""Table 4 and Figures 8, 9, 10: prefetch memory-traffic ratios.

Table 4 aggregates "by summing the prefetch traffic for all of the traces
and dividing it by the demand fetch traffic"; Figures 8-10 plot the
per-workload factors for the unified, instruction and data caches.

Shape assertions (Section 3.5.2): traffic always goes *up* under prefetch
(ratio >= 1), the penalty shrinks with cache size (paper: unified 2.87 at
32 bytes falling to ~1.2 at 64K), and at the large end the penalty is
modest (< 1.6).
"""

import numpy as np

from common import run_once, save_result, shared_prefetch_study


def test_table4_fig8_9_10(benchmark):
    study = run_once(benchmark, shared_prefetch_study)

    text = study.render_table4()
    figures = study.render_figures()
    save_result("table4", text)
    save_result("fig8_9_10", figures)
    print()
    print(text)

    if study.has_stream:
        # Section 3.5 rerun: stream buffers as the third fetch policy.
        stream = study.render_stream_table()
        save_result("table4_stream", stream)
        print()
        print(stream)
        for size, (unified_ratio, _, _) in study.stream_table().items():
            # Stream buffers trade extra traffic for fewer effective
            # misses; the traffic penalty must at least be finite and
            # the policy must never *add* effective misses on average.
            assert unified_ratio >= 0.999, size

    table = study.table4()
    sizes = list(study.sizes)
    unified = np.array([table[size][0] for size in sizes])
    data = np.array([table[size][2] for size in sizes])

    # Prefetch never reduces traffic.
    for size in sizes:
        assert all(value >= 0.999 for value in table[size])

    # The penalty falls with cache size, from ~2-3x at the bottom of the
    # range to < 1.6x at 64K (paper: 2.87 -> 1.21 for the unified cache).
    assert unified[0] > 1.8
    assert unified[-1] < 1.6
    assert unified[0] > unified[-1]
    assert data[0] > data[-1]

    # Broad-strokes agreement with the paper's surviving unified column.
    from repro.analysis import PAPER_TABLE4

    for size in (1024, 4096, 16384, 65536):
        if size in table and size in PAPER_TABLE4:
            ours = table[size][0]
            paper = PAPER_TABLE4[size][0]
            assert 0.5 * paper < ours < 2.0 * paper
