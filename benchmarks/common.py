"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
the same rows/series the paper reports, and saves the rendered text under
``benchmarks/results/``.

Scale control
-------------
The paper's runs use 250 000 references per trace; that is expensive for a
routine benchmark pass, so by default each trace is truncated to
``REPRO_BENCH_LENGTH`` references (default 60 000).  Set
``REPRO_BENCH_FULL=1`` to run at the paper's full lengths (this is what the
numbers in EXPERIMENTS.md were produced with).

Parallelism and caching
-----------------------
The campaign-backed experiments (Table 1, Figures 3-4, the prefetch
study) fan out across ``REPRO_WORKERS`` processes and memoize each
trace x configuration cell under ``benchmarks/.cache`` (overridable with
``REPRO_CACHE_DIR``; set ``REPRO_BENCH_CACHE=0`` to disable), so a
repeated benchmark pass skips every already-simulated cell.

Observability
-------------
Campaign lifecycle events (per-cell wall time, refs/s, cache status,
failures/retries) are appended to
``benchmarks/results/BENCH_campaign_events.jsonl`` (overridable with
``REPRO_EVENT_LOG``; set ``REPRO_BENCH_EVENTS=0`` to disable) — see
``docs/campaign.md`` for the schema.  CI archives the log next to
``BENCH_core_throughput.json``.
"""

from __future__ import annotations

import functools
import json
import os
from pathlib import Path

DEFAULT_BENCH_LENGTH = 60_000

RESULTS_DIR = Path(__file__).resolve().parent / "results"

CACHE_DIR = Path(__file__).resolve().parent / ".cache"

if os.environ.get("REPRO_BENCH_CACHE") != "0":
    os.environ.setdefault("REPRO_CACHE_DIR", str(CACHE_DIR))

if os.environ.get("REPRO_BENCH_EVENTS") != "0":
    RESULTS_DIR.mkdir(exist_ok=True)
    os.environ.setdefault(
        "REPRO_EVENT_LOG", str(RESULTS_DIR / "BENCH_campaign_events.jsonl")
    )


def bench_length() -> int | None:
    """References per trace for this benchmark run (None = paper lengths)."""
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return None
    return int(os.environ.get("REPRO_BENCH_LENGTH", str(DEFAULT_BENCH_LENGTH)))


def save_result(name: str, text: str) -> Path:
    """Write a rendered table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def merge_json_result(
    name: str, payload: dict, *, merge_keys: tuple[str, ...] = ()
) -> Path:
    """Write ``benchmarks/results/{name}.json``, merging named sections.

    A partial benchmark pass (``pytest -k ...``, or a module where only
    some tests ran) records only the entries it measured.  For every
    top-level key in ``merge_keys`` whose value is a dict, the existing
    file's entries are kept and updated rather than replaced, so a
    partial run never clobbers results a previous full run recorded.
    All other top-level keys are overwritten.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    merged = dict(payload)
    if path.exists():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            previous = {}
        for key in merge_keys:
            old = previous.get(key)
            new = payload.get(key)
            if isinstance(old, dict) and isinstance(new, dict):
                merged[key] = {**old, **new}
    path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def run_once(benchmark, function):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


@functools.lru_cache(maxsize=1)
def shared_prefetch_study():
    """The Section 3.5 study, shared by the Figure 5-10 / Table 4 benches."""
    from repro.analysis import prefetch_study

    return prefetch_study(length=bench_length())


@functools.lru_cache(maxsize=1)
def shared_table1():
    """The Table 1 sweep, shared by Table 1/5 benches."""
    from repro.analysis import table1_experiment

    return table1_experiment(length=bench_length())
