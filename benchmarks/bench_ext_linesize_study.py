"""Extension: the full line-size study (the paper's Section 5 future work).

"The effect of line size on miss ratio needs to be quantified beyond the
general statements made here" — this bench runs the
:mod:`repro.analysis.linesize` study across the program classes and checks
the classic results that Smith's follow-up line-size work established:

* the miss-optimal line size grows with cache capacity;
* the *traffic*-optimal line size is smaller than the miss-optimal one;
* 8B -> 16B roughly halves the miss ratio at 8K (Section 4.1's rule).
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import line_size_study

CAPACITIES = (1024, 8192, 65536)
LINES = (4, 8, 16, 32, 64, 128)


def test_ext_linesize_study(benchmark):
    study = run_once(
        benchmark,
        lambda: line_size_study(line_sizes=LINES, capacities=CAPACITIES,
                                length=bench_length()),
    )

    blocks = [study.render(capacity) for capacity in CAPACITIES]
    text = "\n\n".join(blocks)
    save_result("ext_linesize_study", text)
    print()
    print(text)

    workloads = list(study.miss)

    # Miss-optimal line size grows (weakly) with capacity for most
    # workloads: more capacity tolerates the pollution of bigger lines.
    growth_counts = 0
    for name in workloads:
        small_cap = study.miss_optimal_line(name, CAPACITIES[0])
        large_cap = study.miss_optimal_line(name, CAPACITIES[-1])
        if large_cap >= small_cap:
            growth_counts += 1
    assert growth_counts >= len(workloads) - 1

    # Traffic optimum <= miss optimum, everywhere.
    for name in workloads:
        for capacity in CAPACITIES:
            assert study.traffic_optimal_line(name, capacity) <= \
                study.miss_optimal_line(name, capacity)

    # The 8B->16B rule at 8K, averaged over the classes.
    gains = study.doubling_gain(8, 16, 8192)
    assert 0.35 < float(np.mean(list(gains.values()))) < 0.8
