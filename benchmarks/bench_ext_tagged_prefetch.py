"""Extension: tagged prefetch vs prefetch-always.

Section 3.5.2 lists the traffic increase as prefetch-always's main cost.
Tagged prefetch (from the author's earlier [Smit78] work) probes line i+1
only on the *first* demand reference to line i; the classic result is that
it keeps most of the miss-ratio benefit at a fraction of the probe/traffic
overhead.  The paper does not evaluate it; this extension does.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import render_series
from repro.core import CacheGeometry, FetchPolicy, UnifiedCache, simulate
from repro.workloads import catalog

SIZES = (1024, 4096, 16384)
TRACES = ("VCCOM", "FGO1", "ZGREP")


def test_ext_tagged_prefetch(benchmark):
    def experiment():
        quantum = 20_000
        miss_rows = {}
        traffic_rows = {}
        for name in TRACES:
            trace = catalog.generate(name, bench_length())
            for policy, label in (
                (FetchPolicy.DEMAND, "demand"),
                (FetchPolicy.PREFETCH_TAGGED, "tagged"),
                (FetchPolicy.PREFETCH_ALWAYS, "always"),
            ):
                miss, traffic = [], []
                for size in SIZES:
                    organization = UnifiedCache(
                        CacheGeometry(size, 16), fetch_policy=policy
                    )
                    report = simulate(trace, organization, purge_interval=quantum)
                    miss.append(report.miss_ratio)
                    traffic.append(report.overall.memory_traffic_bytes)
                miss_rows[f"{name}:{label}"] = miss
                traffic_rows[f"{name}:{label}"] = traffic
        return miss_rows, traffic_rows

    miss_rows, traffic_rows = run_once(benchmark, experiment)

    text = render_series(
        "trace:policy \\ bytes", list(SIZES), miss_rows,
        title="Extension: miss ratios under demand / tagged / always prefetch",
    )
    save_result("ext_tagged_prefetch", text)
    print()
    print(text)

    for name in TRACES:
        demand = np.array(miss_rows[f"{name}:demand"])
        tagged = np.array(miss_rows[f"{name}:tagged"])
        always = np.array(miss_rows[f"{name}:always"])
        traffic_demand = np.array(traffic_rows[f"{name}:demand"], dtype=float)
        traffic_tagged = np.array(traffic_rows[f"{name}:tagged"], dtype=float)
        traffic_always = np.array(traffic_rows[f"{name}:always"], dtype=float)

        # Both prefetchers cut misses at the large end.
        assert tagged[-1] < demand[-1]
        assert always[-1] < demand[-1]
        # Tagged is gentler on the bus than prefetch-always.
        assert (traffic_tagged <= traffic_always + 1).all()
        # And captures a solid share of the always-prefetch miss savings.
        saved_always = demand - always
        saved_tagged = demand - tagged
        meaningful = saved_always > 0.002
        if meaningful.any():
            share = saved_tagged[meaningful] / saved_always[meaningful]
            assert share.mean() > 0.5, (name, share)
        # The traffic overhead ordering: demand <= tagged <= always.
        assert (traffic_demand <= traffic_tagged + 1).all()
