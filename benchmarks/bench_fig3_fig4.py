"""Figures 3 and 4: instruction and data miss ratios, split caches.

Configuration: split I/D caches (equal sizes), LRU, demand fetch, purged
every 20 000 references, the Table 3 workload set, swept over the paper's
cache sizes.

Shape assertions (Section 3.4): a very wide range of miss ratios across
workloads; data miss ratios higher than instruction miss ratios at small
cache sizes on average; and the 256-byte instruction-cache column spans
roughly the "almost 0.0 to about 0.32" band the paper reads off Figure 3.
"""

from common import bench_length, run_once, save_result

from repro.analysis import figures_3_and_4


def test_fig3_fig4(benchmark):
    result = run_once(benchmark, lambda: figures_3_and_4(length=bench_length()))

    text = result.render()
    save_result("fig3_fig4", text)
    print()
    print(text)

    instruction, data = result.average_curves()
    assert data[0] > instruction[0]  # 32-byte caches: data misses dominate

    low, high = result.data_range(1024)
    assert high > 3 * low  # "a very wide range of miss ratios"

    # Section 3.4 reads the 256-byte instruction-cache range off Figure 3
    # as "almost 0.0 to about 0.32".
    low_i, high_i = result.instruction_range(256)
    assert low_i < 0.08
    assert 0.10 < high_i < 0.60
