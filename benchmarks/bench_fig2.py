"""Figure 2: the [Hard80] MVS supervisor / problem-state curves.

These are analytic power laws (re-fitted to the paper's quoted hit ratios,
see repro.analysis.published); the benchmark regenerates the series and
checks them against the quoted anchors, then compares our MVS trace rows
with the supervisor curve the way Section 3.1 does.
"""

from common import bench_length, run_once, save_result

from repro.analysis import (
    HARD80_SUPERVISOR,
    PAPER_CACHE_SIZES,
    figure2_series,
    render_series,
    unified_lru_sweep,
)
from repro.workloads import catalog


def _make():
    sizes = list(PAPER_CACHE_SIZES)
    series = figure2_series(sizes)
    mvs = unified_lru_sweep(catalog.generate("MVS2", bench_length()), sizes)
    series["MVS2 (ours, 16B lines)"] = list(mvs.miss_ratios)
    return sizes, series


def test_fig2(benchmark):
    sizes, series = run_once(benchmark, _make)

    text = render_series("curve \\ bytes", sizes, series,
                         title="Figure 2: [Hard80] MVS miss ratios")
    save_result("fig2", text)
    print()
    print(text)

    # The quoted [Hard80] hit-ratio anchors.
    assert abs(HARD80_SUPERVISOR.hit_ratio(16384) - 0.925) < 0.003
    assert abs(HARD80_SUPERVISOR.hit_ratio(65536) - 0.964) < 0.003

    # Section 3.1: "The MV52 trace corresponds fairly well with the MVS
    # trace miss ratios from [Hard80]" — after allowing for the line-size
    # difference (32B there, 16B here), our MVS row should bracket the
    # supervisor curve within a factor of ~2 in the 8K-64K range.
    ours = dict(zip(sizes, series["MVS2 (ours, 16B lines)"]))
    for size in (8192, 16384, 32768):
        hard80 = HARD80_SUPERVISOR.miss_ratio(size)
        assert 0.4 * hard80 < ours[size] < 3.0 * hard80
