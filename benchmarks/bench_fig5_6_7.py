"""Figures 5, 6, 7: prefetch-to-demand miss-ratio ratios.

Configuration (Section 3.5): unified and split caches, demand vs prefetch
always, purge every 20 000 references (15 000 for the M68000 traces).

Shape assertions:
* Figure 6 — instruction prefetching always cuts the miss ratio, and for
  caches over 2K by more than 50%;
* Figure 7 — data prefetching helps large caches (>= 8K the average cut is
  on the order of 50%) but can increase the miss ratio for small ones;
* Figure 5 — prefetching is increasingly useful with increasing size.
"""

import numpy as np

from common import run_once, save_result, shared_prefetch_study


def test_fig5_6_7(benchmark):
    study = run_once(benchmark, shared_prefetch_study)

    blocks = []
    for figure in (5, 6, 7):
        from repro.analysis import render_series

        captions = {
            5: "Figure 5: unified miss-ratio ratio (prefetch/demand)",
            6: "Figure 6: instruction miss-ratio ratio",
            7: "Figure 7: data miss-ratio ratio",
        }
        blocks.append(
            render_series("workload \\ bytes", list(study.sizes),
                          study.figure_series(figure), title=captions[figure])
        )
    text = "\n\n".join(blocks)
    save_result("fig5_6_7", text)
    print()
    print(text)

    sizes = np.array(study.sizes)
    over_2k = sizes > 2048
    at_least_8k = sizes >= 8192

    monitor_style = {"PLO", "MATCH", "SORT", "STAT"}
    at_least_1k = sizes >= 1024
    for result in study.workloads.values():
        instruction = result.instruction.miss_ratio_ratios()
        demand = np.array(result.instruction.miss_demand)
        visible = over_2k & (demand > 0.002)
        if result.label in monitor_style:
            # The M68000 hardware monitor folds data reads into the
            # "instruction" stream, diluting sequentiality; prefetch still
            # clearly wins for the larger caches.
            assert (instruction[visible] < 0.75).all(), result.label
            continue
        # Figure 6 (classified traces): "the prefetch miss ratio is almost
        # always below the demand fetch miss ratio once the cache is above
        # 256 bytes", and the cut exceeds 50% beyond 2K wherever the
        # demand miss ratio is still visible.
        assert (instruction[at_least_1k] < 1.0 + 1e-9).all(), result.label
        assert (instruction[visible] < 0.5).all(), result.label

    # Figure 7: the average large-cache data cut is substantial...
    data_large = np.mean(
        [r.data.miss_ratio_ratios()[at_least_8k].mean()
         for r in study.workloads.values()]
    )
    assert data_large < 0.75
    # ...while at the smallest sizes some workloads get *worse*.
    data_small = [r.data.miss_ratio_ratios()[0] for r in study.workloads.values()]
    assert any(value > 1.0 for value in data_small)

    # Figure 5: increasingly useful with size — the average unified ratio
    # at the large end beats the small end.
    unified = np.mean([r.unified.miss_ratio_ratios() for r in study.workloads.values()],
                      axis=0)
    assert unified[at_least_8k].mean() < unified[~at_least_8k].mean()
