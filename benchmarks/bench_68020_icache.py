"""Section 3.4: the Motorola 68020's 256-byte, 4-byte-block I-cache.

The paper speculates: "I would be inclined to predict miss ratios in the
range of 0.2 to 0.6 with this design for most workloads", because 4-byte
blocks capture almost none of instruction fetch's sequentiality.

The benchmark reproduces the estimate over the 32-bit workloads and also
verifies the mechanism: shrinking the block from 16 to 4 bytes at constant
capacity must raise the instruction miss ratio substantially.
"""

from common import bench_length, run_once, save_result

from repro.analysis import estimate_68020_icache


def test_68020_icache(benchmark):
    def experiment():
        four = estimate_68020_icache(length=bench_length(), line_bytes=4)
        sixteen = estimate_68020_icache(length=bench_length(), line_bytes=16)
        return four, sixteen

    four, sixteen = run_once(benchmark, experiment)

    lines = ["68020 256-byte instruction cache estimate:"]
    for label, est in (("4B blocks", four), ("16B blocks", sixteen)):
        lines.append(
            f"  {label}: min={est['minimum']:.3f} median={est['median']:.3f} "
            f"p85={est['percentile85']:.3f} max={est['maximum']:.3f}"
        )
    lines.append("  paper: 4B-block range prediction 0.2-0.6; "
                 "16B-block point estimate 0.25")
    text = "\n".join(lines)
    save_result("icache_68020", text)
    print()
    print(text)

    # The paper predicts 0.2-0.6 "for most workloads"; our synthetic code
    # streams are somewhat cleaner (loop bodies re-execute exactly), so we
    # assert the weaker form: a visible miss problem whose worst cases
    # land inside the paper's band.
    assert four["median"] > 0.04
    assert four["maximum"] > 0.25
    assert four["percentile85"] < 0.75

    # Mechanism: smaller blocks forfeit sequentiality.
    assert four["median"] > 1.5 * sixteen["median"]

    # Section 4's point estimate for a 256B/16B-line icache is 0.25; our
    # tighter synthetic loops land lower, but the estimate must stay a
    # visible, sub-0.5 miss problem (see EXPERIMENTS.md for discussion).
    assert 0.02 < sixteen["percentile85"] < 0.5
