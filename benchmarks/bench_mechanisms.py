"""Miss-path mechanism study on a small catalog subset.

Runs the Jouppi-style mechanism study (victim/miss caches, stream
buffers, the VC+SB / MC+SB combinations, and a two-level hierarchy)
against a direct-mapped primary over one workload per architecture
group, asserts the literature's qualitative ordering, and writes both
the rendered tables and a machine-readable
``benchmarks/results/BENCH_mechanisms.json`` (per-variant mean
effective miss ratios and deltas) for CI to archive and diff.

The stream-buffer third-policy rerun of Section 3.5 is exercised by the
prefetch-study benchmarks (``bench_table4_fig8_9_10.py`` renders the
stream table when present); this module owns the mechanism campaign.
"""

import json
import math

from common import RESULTS_DIR, bench_length, run_once, save_result

from repro.analysis import mechanism_study

#: One workload per architecture group: VAX Unix, IBM batch, Z8000 Unix,
#: Motorola 68000, VAX Lisp.
STUDY_WORKLOADS = ("VCCOM", "FGO1", "ZGREP", "TWOD", "LISP1")

PRIMARY_SIZE = 4096


def test_mechanism_study(benchmark):
    study = run_once(
        benchmark,
        lambda: mechanism_study(
            workloads=list(STUDY_WORKLOADS),
            size=PRIMARY_SIZE,
            length=bench_length(),
        ),
    )

    text = study.summary()
    save_result("mechanisms", text)
    print()
    print(text)

    assert [row.workload for row in study.rows] == list(STUDY_WORKLOADS)

    # Every report carries its per-mechanism statistics blocks.
    for row in study.rows:
        for name, report in row.variants.items():
            assert report.mechanism_names, (row.workload, name)

    # The literature's qualitative ordering on a direct-mapped primary:
    # conflict absorbers help; the victim cache beats the miss cache;
    # combinations beat their constituents; the L2 leaves the primary
    # (effective) miss ratio unchanged.
    for name in ("vc", "mc", "sb", "vc+sb", "mc+sb"):
        assert study.mean_delta(name) < 0, name
    assert study.mean_effective("vc") <= study.mean_effective("mc")
    assert study.mean_effective("vc+sb") < study.mean_effective("vc")
    assert study.mean_effective("vc+sb") < study.mean_effective("sb")
    assert math.isclose(study.mean_delta("l2"), 0.0, abs_tol=1e-12)

    payload = {
        "workloads": list(STUDY_WORKLOADS),
        "primary_size": PRIMARY_SIZE,
        "line_size": study.line_size,
        "associativity": study.associativity,
        "trace_length": study.trace_length,
        "mean_baseline_miss_ratio": study.mean_baseline(),
        "variants": {
            name: {
                "mean_effective_miss_ratio": study.mean_effective(name),
                "mean_delta_vs_baseline": study.mean_delta(name),
            }
            for name in study.variant_names
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_mechanisms.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
