"""Extension: the [Hil84] traffic-ratio warning.

The paper's conclusion: "caches always work ... The traffic ratio, however,
may not be lower than 1.0 [Hil84] and that parameter needs to be carefully
watched."  (Traffic ratio = memory traffic with the cache over traffic
without one.)  This extension computes the ratio across cache sizes and
line sizes and exhibits both regimes: big-line small caches that *amplify*
bus traffic, and configurations that cut it.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import render_series
from repro.core import CacheGeometry, UnifiedCache, simulate, traffic_ratio
from repro.workloads import catalog

LINE_SIZES = (16, 32, 64)
CAPACITIES = (256, 1024, 4096, 16384)
TRACE = "CGO1"


def test_ext_traffic_ratio(benchmark):
    def experiment():
        trace = catalog.generate(TRACE, bench_length())
        reference_bytes = int(trace.sizes.sum())
        rows = {}
        for line in LINE_SIZES:
            values = []
            for capacity in CAPACITIES:
                organization = UnifiedCache(CacheGeometry(capacity, line))
                report = simulate(trace, organization)
                values.append(traffic_ratio(report.overall, reference_bytes))
            rows[f"{line}B lines"] = values
        return rows

    rows = run_once(benchmark, experiment)

    text = render_series(
        "line \\ capacity", list(CAPACITIES), rows,
        title=f"Extension: traffic ratio (with-cache : without-cache), {TRACE}",
        digits=3,
    )
    save_result("ext_traffic_ratio", text)
    print()
    print(text)

    matrix = {line: np.array(rows[f"{line}B lines"]) for line in LINE_SIZES}

    # [Hil84]'s regime: a small cache with large lines moves MORE bytes
    # than no cache at all.
    assert matrix[64][0] > 1.0
    # The benign regime: a big cache cuts traffic well below 1.
    assert matrix[16][-1] < 0.6
    # Bigger lines always cost more traffic at equal capacity here.
    for i in range(len(CAPACITIES)):
        assert matrix[16][i] <= matrix[32][i] <= matrix[64][i]
