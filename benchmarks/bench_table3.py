"""Table 3: fraction of pushed data lines that are dirty.

Shape assertions (Section 3.3): the all-rows average is "close enough to
0.5 to say that as a rule of thumb, half of the data lines pushed will be
dirty", the spread is wide (paper: sigma 0.18, range 0.22-0.80), and the
per-row values track the paper's published column.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import PAPER_TABLE3, table3_experiment


def test_table3(benchmark):
    result = run_once(benchmark, lambda: table3_experiment(length=bench_length()))

    text = result.render()
    save_result("table3", text)
    print()
    print(text)

    assert 0.35 < result.average < 0.60  # the rule-of-thumb ~0.5
    assert result.stdev > 0.10  # wide per-program spread

    ours = np.array([row.fraction_dirty for row in result.rows])
    paper = np.array([PAPER_TABLE3[row.label] for row in result.rows])
    correlation = np.corrcoef(ours, paper)[0, 1]
    assert correlation > 0.7

    # The paper's headline range: some programs push mostly-clean lines,
    # some mostly-dirty ones.
    assert ours.min() < 0.35
    assert ours.max() > 0.65
