"""Table 2: trace characteristics.

Shape assertions (Section 3.2):
* instruction-fetch shares: ~75% Z8000, ~77% CDC 6400, ~50% for 370/VAX;
* reads outnumber writes about 2:1 overall;
* branch-frequency ordering: VAX > 360/91, 370 > Z8000 > CDC 6400;
* footprints: the M68000 programs are tiny, the 370/LISP programs largest.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis.table2 import table2_experiment


def test_table2(benchmark):
    result = run_once(benchmark, lambda: table2_experiment(length=bench_length()))

    text = result.render()
    save_result("table2", text)
    print()
    print(text)

    summary = result.group_summary()

    assert abs(summary["Zilog Z8000"]["ifetch"] - 0.751) < 0.02
    assert abs(summary["CDC 6400"]["ifetch"] - 0.772) < 0.02
    assert abs(summary["VAX (non-Lisp)"]["ifetch"] - 0.50) < 0.03
    assert abs(summary["IBM 370"]["ifetch"] - 0.52) < 0.03

    # Reads ~ 2x writes on the classified traces.
    reads = np.mean([s["read"] for g, s in summary.items() if g != "Motorola 68000"])
    writes = np.mean([s["write"] for g, s in summary.items() if g != "Motorola 68000"])
    assert 1.5 < reads / writes < 2.8

    branch = {g: s["branch"] for g, s in summary.items()}
    assert branch["VAX (non-Lisp)"] > branch["Zilog Z8000"] > branch["CDC 6400"]
    assert branch["IBM 370"] > branch["CDC 6400"]

    aspace = {g: s["aspace"] for g, s in summary.items()}
    assert aspace["Motorola 68000"] == min(aspace.values())
    assert max(aspace, key=aspace.get) in ("IBM 370", "VAX (Lisp)")

    # Data footprints generally exceed instruction footprints, except on
    # the Z8000 (Section 3.2's observation).  Code coverage accumulates
    # with trace length (phase drift), so the Z8000 direction needs at
    # least ~50k references to be meaningful.
    assert summary["IBM 370"]["dlines"] > summary["IBM 370"]["ilines"]
    if (bench_length() or 250_000) >= 50_000:
        assert summary["Zilog Z8000"]["dlines"] < summary["Zilog Z8000"]["ilines"]
