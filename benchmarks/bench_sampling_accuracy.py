"""Sampled-simulation benchmark: speedup and honesty of the error bars.

Runs the Table-1-style LRU capacity sweep both exactly and under an
interval-sampling plan measuring ~10% of each trace, on pre-built,
pre-compiled traces so the comparison is engine time, not trace
generation.  Asserts the two properties the sampling subsystem promises:

* **Speedup** — the sampled sweep must run at least 3x faster than the
  full sweep over the same traces.
* **Coverage** — every full-run miss ratio must fall inside the sampled
  run's *reported* 95% confidence interval (all seeds here are pinned,
  so this is a deterministic regression check, not a coin flip).

A machine-readable summary — wall times, speedup, and per-cell observed
vs reported error — is written to
``benchmarks/results/BENCH_sampling_accuracy.json`` so CI can archive
and diff it.  ``REPRO_BENCH_LENGTH`` scales the trace length.
"""

import json
import time

import pytest

from common import RESULTS_DIR, bench_length

from repro.analysis.sweep import PAPER_LINE_SIZE
from repro.core.jobs import StackSweepJob
from repro.sampling import IntervalSampling, run_sampled
from repro.workloads import catalog

LENGTH = bench_length() or 250_000
WORKLOADS = ("ZGREP", "VCCOM", "FGO1", "LISP1")
SIZES = (1024, 4096, 16384)

JOB = StackSweepJob(sizes=SIZES, line_size=PAPER_LINE_SIZE)
PLAN = IntervalSampling(fraction=0.1, window=500, warmup="discard", seed=0)

#: Timing repetitions; the minimum is reported (standard practice for
#: wall-clock comparisons on shared machines).
ROUNDS = 3


@pytest.fixture(scope="module")
def traces():
    """Pre-built and pre-compiled, so timings measure the engines only."""
    built = {name: catalog.generate(name, LENGTH) for name in WORKLOADS}
    for trace in built.values():
        trace.compiled(PAPER_LINE_SIZE)
    return built


def _best_of(function, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_sampling_speedup_and_coverage(traces):
    full, full_seconds = _best_of(
        lambda: {name: JOB.run(trace) for name, trace in traces.items()}
    )
    sampled, sampled_seconds = _best_of(
        lambda: {name: run_sampled(trace, JOB, PLAN) for name, trace in traces.items()}
    )
    speedup = full_seconds / sampled_seconds

    cells = []
    covered = 0
    for name in WORKLOADS:
        info = sampled[name].info
        for size, truth, estimate in zip(SIZES, full[name], info.estimates):
            inside = estimate.contains(truth)
            covered += inside
            cells.append(
                {
                    "trace": name,
                    "cache_bytes": size,
                    "full_miss_ratio": truth,
                    "estimate": estimate.value,
                    "ci": [estimate.ci_low, estimate.ci_high],
                    "observed_abs_error": abs(estimate.value - truth),
                    "reported_half_width": estimate.half_width,
                    "covered": bool(inside),
                }
            )

    any_info = sampled[WORKLOADS[0]].info
    payload = {
        "references_per_trace": LENGTH,
        "plan": PLAN.identity(),
        "measured_fraction": any_info.sampled_fraction,
        "replayed_fraction": any_info.replayed_references / LENGTH,
        "wall_full_seconds": full_seconds,
        "wall_sampled_seconds": sampled_seconds,
        "speedup": speedup,
        "coverage": f"{covered}/{len(cells)}",
        "cells": cells,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_sampling_accuracy.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert covered == len(cells), (
        f"only {covered}/{len(cells)} cells covered: "
        + "; ".join(
            f"{c['trace']}@{c['cache_bytes']}" for c in cells if not c["covered"]
        )
    )
    assert speedup >= 3.0, (
        f"sampled sweep only {speedup:.1f}x faster "
        f"({full_seconds:.3f}s vs {sampled_seconds:.3f}s)"
    )
