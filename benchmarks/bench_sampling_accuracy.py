"""Sampled-simulation benchmark: speedup and honesty of the error bars.

Runs the Table-1-style LRU capacity sweep exactly, then under each
sampling mode the subsystem offers — interval sampling (systematic,
random, and stratified window choice) and representative-interval
(SimPoint-style) sampling — and reports wall time, speedup, measured
fraction, and observed vs reported error for every mode side by side.

Timing methodology: every timed round runs on a **fresh copy** of each
trace (same arrays, new object), pre-compiled outside the timed region.
The engines memoize whole-trace passes on the compiled trace object, so
re-running on the same object would time the memo, not the engine.

The interval modes are timed per independent run — that is their real
cost, nothing carries over between configurations.  Representative
sampling is the opposite: its windowed signature/profile pass is
computed once per trace and memoized, and every further configuration
prices at a handful of windows.  The bench therefore reports both its
``cold_wall_seconds`` (first run, profiling included) and its
``wall_seconds`` (marginal cost of another configuration on the warm
profile) — the amortized cost a multi-configuration campaign pays — and
asserts the headline guarantees:

* **Representative speedup** — the amortized sweep must run at least
  15x faster than the full sweep.
* **Coverage** — every full-run miss ratio must fall inside the
  reported interval, for the systematic *and* the representative mode
  (all seeds are pinned, so this is a deterministic regression check).
* **Systematic speedup** — the 10% interval plan keeps its ≥3x.

A machine-readable summary is merge-written to
``benchmarks/results/BENCH_sampling_accuracy.json`` (a partial
``pytest -k`` pass updates only the modes it ran) so CI can archive,
diff, and cross-compare the modes.  ``REPRO_BENCH_LENGTH`` scales the
trace length.
"""

import time

import pytest

from common import bench_length, merge_json_result

from repro.analysis.sweep import PAPER_LINE_SIZE
from repro.core.jobs import StackSweepJob
from repro.sampling import IntervalSampling, RepresentativeSampling, run_sampled
from repro.trace.stream import Trace
from repro.workloads import catalog

LENGTH = bench_length() or 250_000
WORKLOADS = ("ZGREP", "VCCOM", "FGO1", "LISP1")
SIZES = (1024, 4096, 16384)

JOB = StackSweepJob(sizes=SIZES, line_size=PAPER_LINE_SIZE)

PLANS = {
    "systematic": IntervalSampling(fraction=0.1, window=500, warmup="discard", seed=0),
    "random": IntervalSampling(
        fraction=0.1, window=500, mode="random", warmup="discard", seed=0
    ),
    "stratified": IntervalSampling(
        fraction=0.1, window=500, mode="stratified", warmup="discard", seed=0
    ),
    "representative": RepresentativeSampling(),
}

#: Timing repetitions; the minimum is reported (standard practice for
#: wall-clock comparisons on shared machines).
ROUNDS = 3


@pytest.fixture(scope="module")
def traces():
    """Built once; every timed round runs on fresh copies of these."""
    return {name: catalog.generate(name, LENGTH) for name in WORKLOADS}


def _fresh(trace):
    """A new Trace over the same arrays — empty memo, honest timings."""
    return Trace(
        trace.kinds, trace.addresses, trace.sizes, trace.metadata, validate=False
    )


def _fresh_compiled(traces):
    copies = {name: _fresh(trace) for name, trace in traces.items()}
    for copy in copies.values():
        copy.compiled(PAPER_LINE_SIZE)
    return copies


def _best_of(traces, runner, rounds=ROUNDS):
    """min-of-N wall time, each round on fresh pre-compiled traces."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        copies = _fresh_compiled(traces)
        start = time.perf_counter()
        result = {name: runner(copy) for name, copy in copies.items()}
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.fixture(scope="module")
def full_results(traces):
    """The exact sweep and its wall time (the baseline for every mode)."""
    return _best_of(traces, JOB.run)


@pytest.fixture(scope="module")
def results_log(traces, full_results):
    """Collects per-mode blocks; merge-written to JSON at module end."""
    full, full_seconds = full_results
    modes = {}
    yield modes
    merge_json_result(
        "BENCH_sampling_accuracy",
        {
            "references_per_trace": LENGTH,
            "workloads": list(WORKLOADS),
            "cache_bytes": list(SIZES),
            "wall_full_seconds": full_seconds,
            "modes": modes,
        },
        merge_keys=("modes",),
    )


def _mode_block(mode, sampled, seconds, full, full_seconds):
    """The per-mode JSON block: speedup, fractions, per-cell accuracy."""
    cells = []
    covered = 0
    for name in WORKLOADS:
        info = sampled[name].info
        for size, truth, estimate in zip(SIZES, full[name], info.estimates):
            inside = estimate.contains(truth)
            covered += inside
            cells.append(
                {
                    "trace": name,
                    "cache_bytes": size,
                    "full_miss_ratio": truth,
                    "estimate": estimate.value,
                    "ci": [estimate.ci_low, estimate.ci_high],
                    "observed_abs_error": abs(estimate.value - truth),
                    "reported_half_width": estimate.half_width,
                    "covered": bool(inside),
                }
            )
    infos = [sampled[name].info for name in WORKLOADS]
    return {
        "plan": PLANS[mode].identity(),
        "wall_seconds": seconds,
        "speedup": full_seconds / seconds if seconds > 0 else float("inf"),
        "measured_fraction": sum(i.sampled_fraction for i in infos) / len(infos),
        "replayed_fraction": sum(i.replayed_references for i in infos)
        / (LENGTH * len(infos)),
        "coverage": f"{covered}/{len(cells)}",
        "covered_cells": covered,
        "total_cells": len(cells),
        "worst_abs_error": max(c["observed_abs_error"] for c in cells),
        "worst_half_width": max(c["reported_half_width"] for c in cells),
        "cells": cells,
    }


@pytest.mark.parametrize("mode", ["systematic", "random", "stratified"])
def test_interval_mode_speedup_and_coverage(mode, traces, full_results, results_log):
    full, full_seconds = full_results
    plan = PLANS[mode]
    sampled, seconds = _best_of(traces, lambda t: run_sampled(t, JOB, plan))
    block = _mode_block(mode, sampled, seconds, full, full_seconds)
    results_log[mode] = block

    if mode == "systematic":
        assert block["covered_cells"] == block["total_cells"], (
            f"only {block['coverage']} cells covered: "
            + "; ".join(
                f"{c['trace']}@{c['cache_bytes']}"
                for c in block["cells"]
                if not c["covered"]
            )
        )
        assert block["speedup"] >= 3.0, (
            f"systematic sweep only {block['speedup']:.1f}x faster "
            f"({full_seconds:.3f}s vs {seconds:.3f}s)"
        )
    else:
        # Seeded alternatives: record accuracy, require a real speedup.
        assert block["speedup"] > 1.0, (
            f"{mode} sweep slower than exact "
            f"({full_seconds:.3f}s vs {seconds:.3f}s)"
        )


def test_representative_mode_speedup_and_coverage(traces, full_results, results_log):
    full, full_seconds = full_results
    plan = PLANS["representative"]

    # Cold: fresh traces, includes the one-time signature/profile pass.
    copies = _fresh_compiled(traces)
    start = time.perf_counter()
    sampled = {name: run_sampled(copy, JOB, plan) for name, copy in copies.items()}
    cold_seconds = time.perf_counter() - start

    # Warm: the marginal cost of pricing another configuration off the
    # memoized profile — what each additional campaign config pays.
    warm_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        rerun = {name: run_sampled(copy, JOB, plan) for name, copy in copies.items()}
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    block = _mode_block("representative", sampled, warm_seconds, full, full_seconds)
    block["cold_wall_seconds"] = cold_seconds
    block["cold_speedup"] = full_seconds / cold_seconds if cold_seconds > 0 else 0.0
    block["signature_seconds"] = max(0.0, cold_seconds - warm_seconds)
    results_log["representative"] = block

    # Determinism: the warm rerun must be bit-identical to the cold run.
    for name in WORKLOADS:
        assert tuple(rerun[name].value) == tuple(sampled[name].value), name

    assert block["covered_cells"] == block["total_cells"], (
        f"only {block['coverage']} cells covered: "
        + "; ".join(
            f"{c['trace']}@{c['cache_bytes']}"
            for c in block["cells"]
            if not c["covered"]
        )
    )
    assert block["speedup"] >= 15.0, (
        f"representative sweep only {block['speedup']:.1f}x faster amortized "
        f"({full_seconds:.3f}s vs {warm_seconds:.3f}s warm)"
    )
