"""Table 1 / Figure 1: unified miss ratios for the whole trace collection.

Paper configuration: fully associative, LRU, demand fetch, 16-byte lines,
copy back with fetch on write, no task-switch purges; 57 trace rows swept
over twelve cache sizes.

Shape assertions (Section 3.1):
* the M68000 toys are the best group, the Z8000 utilities next;
* the 370/360 programs average far worse than the VAX utilities;
* the MVS traces are the worst rows of all;
* the LISP average sits between the VAX utilities and the 370 batch jobs.
"""

import numpy as np

from common import bench_length, run_once, save_result, shared_table1


def test_table1_fig1(benchmark):
    result = run_once(benchmark, shared_table1)

    text = result.render()
    save_result("table1_fig1", text)
    print()
    print(text)

    index_1k = result.sizes.index(1024)
    averages = result.group_averages()
    at_1k = {group: curve[index_1k] for group, curve in averages.items()}
    combined_370 = result.combined_370_360_average()[index_1k]

    assert at_1k["Motorola 68000"] < at_1k["Zilog Z8000"] < at_1k["VAX (non-Lisp)"]
    assert at_1k["VAX (non-Lisp)"] < at_1k["VAX (Lisp)"] < combined_370 * 2
    assert combined_370 > 2 * at_1k["VAX (non-Lisp)"]

    worst_traces = sorted(
        result.curves, key=lambda name: result.curves[name].at(1024)
    )[-2:]
    assert set(worst_traces) == {"MVS1", "MVS2"}

    # Every curve is non-increasing (LRU inclusion).
    for curve in result.curves.values():
        assert (np.diff(curve.as_array()) <= 1e-9).all()

    # Paper-vs-measured summary for EXPERIMENTS.md.
    comparison = result.comparison_with_paper()
    lines = ["group average @1K: paper vs measured"]
    for group, (paper, ours) in comparison.items():
        lines.append(f"  {group:18s} {paper:.3f}  {ours:.3f}")
    lines.append(f"  trace length: {bench_length() or 'paper (250k/100k)'}")
    save_result("table1_comparison", "\n".join(lines))
    print("\n".join(lines))
