"""Ablation 1: the locality model vs random-number-driven simulation.

Section 1.1's argument for trace-driven simulation: "there do not
currently exist any generally accepted or believable models ... thus it is
not possible to ... drive a simulator with a good representation of a
program."  A uniform-random address stream (the naive alternative) has no
temporal locality, so it wildly overpredicts miss ratios; this ablation
quantifies the gap between it and the structured workload model at equal
footprint and mix.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import render_series, unified_lru_sweep
from repro.trace import Trace, TraceMetadata
from repro.workloads import catalog

SIZES = (256, 1024, 4096, 16384)


def _random_equivalent(trace, seed=99):
    """Uniform-random trace with the same mix, footprint and length."""
    rng = np.random.default_rng(seed)
    unique = np.unique(trace.addresses // 16) * 16
    addresses = rng.choice(unique, size=len(trace)) + 4 * rng.integers(
        0, 4, size=len(trace)
    )
    return Trace(
        trace.kinds, addresses, trace.sizes, TraceMetadata(name="random-equivalent")
    )


def test_ablation_locality_model(benchmark):
    def experiment():
        length = bench_length()
        rows = {}
        for name in ("VCCOM", "FGO1", "ZGREP"):
            structured = catalog.generate(name, length)
            random_like = _random_equivalent(structured)
            rows[f"{name} (model)"] = list(
                unified_lru_sweep(structured, SIZES).miss_ratios
            )
            rows[f"{name} (random)"] = list(
                unified_lru_sweep(random_like, SIZES).miss_ratios
            )
        return rows

    rows = run_once(benchmark, experiment)

    text = render_series(
        "stream \\ bytes", list(SIZES), rows,
        title="Ablation: structured workload model vs uniform-random addresses",
    )
    save_result("ablation_locality", text)
    print()
    print(text)

    for name in ("VCCOM", "FGO1", "ZGREP"):
        model = np.array(rows[f"{name} (model)"])
        random_like = np.array(rows[f"{name} (random)"])
        # Random streams overpredict at every size, by a large factor for
        # the small caches a 1985 designer cared about.
        assert (random_like >= model - 1e-9).all()
        assert random_like[0] > 3 * model[0]
