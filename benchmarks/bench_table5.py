"""Table 5: design target miss ratios.

Reproduces the estimation procedure (85th percentile over the 32-bit
workloads: IBM 370, IBM 360/91, VAX) and compares against the paper's
printed table.

Shape assertions (Section 4.1): the targets are monotone in cache size,
land within a factor ~2 of the paper's unified column across the range,
and the doubling-improvement factors bracket the paper's 14%/27%/23%
figures.
"""

from common import bench_length, run_once, save_result

from repro.analysis import PAPER_TABLE5, design_target_estimate


def test_table5(benchmark):
    targets = run_once(
        benchmark, lambda: design_target_estimate(length=bench_length())
    )

    text = targets.render()
    save_result("table5", text)
    print()
    print(text)

    unified = dict(zip(targets.sizes, targets.unified))
    assert list(unified.values()) == sorted(unified.values(), reverse=True)

    # Factor-of-two agreement with the paper's unified design targets over
    # the mid range (the ends are dominated by compulsory effects that
    # depend on trace length).
    for size in (512, 1024, 2048, 4096, 8192, 16384):
        paper = PAPER_TABLE5[size][0]
        assert 0.35 * paper < unified[size] < 2.2 * paper, (size, unified[size], paper)

    # Doubling factors: paper says ~14% (32B-512B), ~27% (512B-64K),
    # ~23% overall.  Allow generous bands.
    small_end = targets.halving_factor(32, 512)
    large_end = targets.halving_factor(512, 65536)
    overall = targets.halving_factor(32, 65536)
    lines = [
        "miss-ratio cut per cache doubling (paper: 0.14 / 0.27 / 0.23):",
        f"  32B-512B : {small_end:.3f}",
        f"  512B-64K : {large_end:.3f}",
        f"  overall  : {overall:.3f}",
    ]
    save_result("table5_doubling", "\n".join(lines))
    print("\n".join(lines))
    assert 0.05 < small_end < 0.35
    assert 0.12 < large_end < 0.45
    assert 0.10 < overall < 0.40
