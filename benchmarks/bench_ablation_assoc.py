"""Ablation 3: associativity.

The paper's Table 1 uses full associativity and notes that real machines
do worse; Section 4.1 cites the VAX 11/780's 2-way design and says "the
effect of the latter on the miss ratio should be small".  This ablation
quantifies it: full vs 8-way vs 2-way vs direct-mapped on the same
workloads.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import render_series
from repro.core import CacheGeometry, UnifiedCache, simulate
from repro.workloads import catalog

SIZES = (1024, 4096, 16384)
WAYS = (None, 8, 2, 1)  # None = fully associative


def test_ablation_associativity(benchmark):
    def experiment():
        trace = catalog.generate("VSPICE", bench_length())
        rows = {}
        for ways in WAYS:
            label = "fully-assoc" if ways is None else f"{ways}-way"
            values = []
            for size in SIZES:
                organization = UnifiedCache(CacheGeometry(size, 16, ways))
                values.append(simulate(trace, organization).miss_ratio)
            rows[label] = values
        return rows

    rows = run_once(benchmark, experiment)

    text = render_series(
        "assoc \\ bytes", list(SIZES), rows,
        title="Ablation: associativity (VSPICE, LRU, 16B lines)",
    )
    save_result("ablation_assoc", text)
    print()
    print(text)

    full = np.array(rows["fully-assoc"])
    two_way = np.array(rows["2-way"])
    direct = np.array(rows["1-way"])

    # Sanity: conflict misses only ever add.
    assert (two_way >= full - 1e-9).all()
    assert (direct >= two_way - 1e-9).all()

    # The paper's claim: 2-way is close to fully associative...
    assert (two_way <= full * 1.8 + 0.01).all()
    # ...while direct mapping visibly costs more than 2-way somewhere.
    assert (direct > two_way * 1.02).any()
