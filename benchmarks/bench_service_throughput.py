"""End-to-end campaign-service throughput under concurrent clients.

One in-process service (``BackgroundServer`` over a ``PoolBackend``)
takes the same 20-cell campaign from 1, 2, then 4 concurrent clients.
Each phase measures delivered cells/second and — the service's reason to
exist — asserts the dedupe invariant from ``docs/service.md``: N clients
submitting an identical campaign cause at most 20 actual simulations
(counted as ``cell_finished`` events with ``source == "run"`` across
every client's SSE stream), every client receives the full event stream,
and all clients get byte-identical merged results.

The machine-readable summary goes to
``benchmarks/results/BENCH_service_throughput.json`` so CI can archive
it.  ``REPRO_BENCH_SERVICE_REFS`` scales the per-cell trace length
(default 20 000; CI's smoke step uses a shorter setting).
"""

import json
import os
import tempfile
import threading
import time

from common import RESULTS_DIR

from repro.core.jobs import CampaignCell, SimulateJob, TraceSpec
from repro.service import (
    BackgroundServer,
    PoolBackend,
    Scheduler,
    ServiceClient,
)

SERVICE_REFS = int(os.environ.get("REPRO_BENCH_SERVICE_REFS", "20000"))
CELLS_PER_CAMPAIGN = 20
CLIENT_COUNTS = (1, 2, 4)
TRACES = ("VCCOM", "ZGREP", "PLO", "FGO1")
SIZES = (512, 1024, 4096, 16384, 32768)


def make_cells(phase: int):
    """The phase's 20-cell campaign; phase-distinct lengths keep cache
    keys distinct across phases, so every phase does real work."""
    return [
        CampaignCell(
            label=f"p{phase}/{name}/{size}",
            trace=TraceSpec.catalog(name, SERVICE_REFS + phase),
            job=SimulateJob(size=size, line_size=16),
        )
        for name in TRACES
        for size in SIZES
    ]


def run_phase(server, clients: int, phase: int) -> dict:
    """``clients`` threads submit the identical campaign concurrently."""
    cells = make_cells(phase)
    finals = [None] * clients
    streams = [None] * clients

    def one_client(slot: int) -> None:
        client = ServiceClient(server.url, user=f"client-{slot}")
        events = []
        finals[slot] = client.run(cells, on_event=events.append)
        streams[slot] = events

    start = time.perf_counter()
    threads = [
        threading.Thread(target=one_client, args=(slot,))
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    # --- the dedupe invariant, verified from the event logs ---
    assert all(f is not None for f in finals), "a client never finished"
    simulated = sum(
        1
        for events in streams
        for event in events
        if event["event"] == "cell_finished" and event.get("source") == "run"
    )
    assert simulated <= CELLS_PER_CAMPAIGN, (
        f"{clients} clients caused {simulated} simulations of "
        f"{CELLS_PER_CAMPAIGN} unique cells"
    )
    for events in streams:  # every client saw the full SSE stream
        kinds = [event["event"] for event in events]
        assert kinds.count("cell_finished") == CELLS_PER_CAMPAIGN, kinds
        assert kinds[-1] == "campaign_finished", kinds
    reference = [outcome["value"] for outcome in finals[0]["results"]]
    for final in finals[1:]:  # identical merged results for everyone
        assert [o["value"] for o in final["results"]] == reference
        assert final["failed"] == 0

    delivered = clients * CELLS_PER_CAMPAIGN
    return {
        "clients": clients,
        "cells": CELLS_PER_CAMPAIGN,
        "delivered_cells": delivered,
        "simulated_cells": simulated,
        "wall_seconds": wall,
        "cells_per_second": delivered / wall,
        "unique_cells_per_second": CELLS_PER_CAMPAIGN / wall,
    }


def test_service_throughput_under_concurrent_clients():
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        os.environ["REPRO_TRACE_STORE"] = os.path.join(tmp, "traces")
        scheduler = Scheduler(
            backend=PoolBackend(workers=min(4, os.cpu_count() or 1)),
            cache=os.path.join(tmp, "cache"),
        )
        phases = []
        with BackgroundServer(scheduler) as server:
            for phase, clients in enumerate(CLIENT_COUNTS, start=1):
                phases.append(run_phase(server, clients, phase))

    payload = {
        "benchmark": "service_throughput",
        "refs_per_cell": SERVICE_REFS,
        "backend": "pool",
        "phases": phases,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service_throughput.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for entry in phases:
        print(
            f"{entry['clients']} client(s): "
            f"{entry['cells_per_second']:.1f} cells/s delivered "
            f"({entry['simulated_cells']} simulated, "
            f"{entry['wall_seconds']:.2f}s)"
        )
