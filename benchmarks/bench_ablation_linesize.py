"""Ablation 4: line size.

Section 4.1 uses the rule that at 8K bytes "the miss ratio can usually be
halved by changing to 16 byte lines" from 8-byte lines, and Section 3.1
notes that "in the range of memory sizes from 16K to 64K, the miss ratio
drops rapidly with increasing line size".  This ablation sweeps the line
size at fixed capacity on the 32-bit workloads.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import render_series
from repro.core import lru_miss_ratio_curve
from repro.workloads import catalog

LINE_SIZES = (4, 8, 16, 32, 64)
CAPACITY = 8192
TRACES = ("VCCOM", "FGO1", "LISP1")


def test_ablation_line_size(benchmark):
    def experiment():
        rows = {}
        for name in TRACES:
            trace = catalog.generate(name, bench_length())
            rows[name] = [
                float(lru_miss_ratio_curve(trace, [CAPACITY], line_size=line)[0])
                for line in LINE_SIZES
            ]
        return rows

    rows = run_once(benchmark, experiment)

    text = render_series(
        "trace \\ line bytes", list(LINE_SIZES), rows,
        title=f"Ablation: line size at {CAPACITY}B capacity (fully assoc LRU)",
    )
    save_result("ablation_linesize", text)
    print()
    print(text)

    for name in TRACES:
        values = np.array(rows[name])
        # Bigger lines exploit spatial locality through 16 bytes for every
        # workload; beyond that, pollution can reverse the trend for
        # scattered-data workloads (LISP1 turns at 32B), which is exactly
        # why the paper treats line size as workload-dependent.
        assert (np.diff(values[:3]) <= 1e-9).all()
        # The 8B -> 16B step is substantial (paper: roughly halves at 8K).
        ratio = values[2] / max(values[1], 1e-12)
        assert ratio < 0.85
    code_bound = [name for name in TRACES
                  if np.argmin(np.array(rows[name])) == len(LINE_SIZES) - 1]
    assert code_bound  # someone still benefits all the way to 64B lines
