"""Extension: the associativity study.

Quantifies two of the paper's assertions: full associativity is an
idealization real machines approach ("in a real machine, performance would
be lower"), and the VAX 11/780's 2-way design costs little ("the effect of
the latter on the miss ratio should be small", Section 4.1).
"""

from common import bench_length, run_once, save_result

from repro.analysis import associativity_study

CAPACITIES = (1024, 8192)


def test_ext_associativity_study(benchmark):
    study = run_once(
        benchmark,
        lambda: associativity_study(capacities=CAPACITIES, length=bench_length()),
    )

    text = "\n\n".join(study.render(capacity) for capacity in CAPACITIES)
    save_result("ext_associativity_study", text)
    print()
    print(text)

    for capacity in CAPACITIES:
        # Conflict misses are non-negative and shrink with associativity.
        for name in study.miss:
            direct = study.conflict_miss_ratio(name, 1, capacity)
            two_way = study.conflict_miss_ratio(name, 2, capacity)
            assert direct >= two_way - 1e-9 >= -1e-9

        # The paper's 2-way claim: small penalty on average.
        assert study.mean_penalty(2, capacity) < 1.5
        # Direct mapping is the one that visibly hurts.
        assert study.mean_penalty(1, capacity) > study.mean_penalty(2, capacity)

    lines = ["mean miss-ratio penalty vs fully associative:"]
    for capacity in CAPACITIES:
        for ways in (1, 2, 4, 8):
            lines.append(f"  {capacity:>6}B {ways}-way: "
                         f"{study.mean_penalty(ways, capacity):.3f}x")
    save_result("ext_associativity_penalties", "\n".join(lines))
    print("\n".join(lines))
