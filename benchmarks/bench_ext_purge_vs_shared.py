"""Extension: purge-on-switch vs address-tagged cache sharing.

The paper's multiprogramming method purges the cache at every task switch
— correct for 1985 machines without address-space identifiers, and "the
results are definitely sensitive to that figure".  Machines with ASID
tags keep every process's lines resident and let them *compete* instead.
Both behaviours fall out of the existing machinery (the round-robin mix
relocates programs into disjoint address spaces, so running it without
purging is exactly ASID-style sharing), so this extension quantifies what
the purge assumption costs.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import render_series
from repro.core import CacheGeometry, SplitCache, simulate
from repro.trace import interleave_round_robin
from repro.workloads import catalog

SIZES = (4096, 16384, 65536)
MEMBERS = ("ZVI", "ZGREP", "ZPR", "ZOD", "ZSORT")  # the paper's Z8000 mix
QUANTUM = 20_000


def test_ext_purge_vs_shared(benchmark):
    def experiment():
        traces = [catalog.generate(name, bench_length()) for name in MEMBERS]
        mixed = interleave_round_robin(traces, quantum=QUANTUM)
        # Warm-start measurement (simulate(warmup=...)) removes the
        # compulsory-miss floor, which would otherwise mask the steady-state
        # difference between the two switch models.
        warmup = len(mixed) // 3
        rows = {}
        for label, purge in (("purge-on-switch", QUANTUM), ("ASID sharing", None)):
            values = []
            for size in SIZES:
                report = simulate(
                    mixed, SplitCache(CacheGeometry(size, 16)),
                    purge_interval=purge, warmup=warmup,
                )
                values.append(report.miss_ratio)
            rows[label] = values
        return rows

    rows = run_once(benchmark, experiment)

    text = render_series(
        "switch model \\ bytes", list(SIZES), rows,
        title=f"Extension: task-switch purging vs ASID sharing "
        f"(Z8000 mix, quantum {QUANTUM})",
    )
    save_result("ext_purge_vs_shared", text)
    print()
    print(text)

    purge = np.array(rows["purge-on-switch"])
    shared = np.array(rows["ASID sharing"])

    # Sharing can only help: every purge discards state some program
    # would have re-used.
    assert (shared <= purge + 1e-9).all()
    # And the steady-state gap is large for big caches: a 64K cache holds
    # all five working sets, so purging it every 20k references is pure
    # refill waste (measured ~2x at every scale we run).
    assert purge[-1] > 1.6 * shared[-1]
