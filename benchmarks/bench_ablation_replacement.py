"""Ablation 6: replacement policy, bounded by Belady's MIN.

The paper standardizes on LRU.  This ablation compares LRU, FIFO, random
and the offline-optimal MIN on the same workloads, quantifying (a) how
much the policy choice matters relative to workload choice and (b) how
close LRU sits to the unrealizable optimum.
"""

import numpy as np

from common import bench_length, run_once, save_result

from repro.analysis import render_series
from repro.core import (
    CacheGeometry,
    UnifiedCache,
    belady_miss_ratio,
    policy_factory,
    simulate,
)
from repro.workloads import catalog

SIZES = (1024, 4096, 16384)
TRACE = "VCCOM"


def test_ablation_replacement(benchmark):
    def experiment():
        trace = catalog.generate(TRACE, bench_length())
        rows = {}
        for policy in ("lru", "fifo", "random"):
            values = []
            for size in SIZES:
                organization = UnifiedCache(
                    CacheGeometry(size, 16), replacement=policy_factory(policy, seed=1)
                )
                values.append(simulate(trace, organization).miss_ratio)
            rows[policy] = values
        rows["MIN (offline)"] = [
            belady_miss_ratio(trace, size) for size in SIZES
        ]
        return rows

    rows = run_once(benchmark, experiment)

    text = render_series(
        "policy \\ bytes", list(SIZES), rows,
        title=f"Ablation: replacement policy ({TRACE}, fully assoc, 16B lines)",
    )
    save_result("ablation_replacement", text)
    print()
    print(text)

    lru = np.array(rows["lru"])
    fifo = np.array(rows["fifo"])
    optimal = np.array(rows["MIN (offline)"])

    # MIN lower-bounds everything.
    for name in ("lru", "fifo", "random"):
        assert (np.array(rows[name]) >= optimal - 1e-12).all(), name

    # LRU beats (or ties) FIFO on these workloads, and stays within ~2x of
    # the unrealizable optimum — policy choice matters far less than the
    # workload-to-workload spread in Table 1.
    assert (lru <= fifo + 0.01).all()
    assert (lru <= 2.5 * np.maximum(optimal, 1e-4) + 0.01).all()
