"""Ablation 5: memory in the instruction interface.

Section 3.2: because the CDC 6400 traces assume a fetch interface "with no
memory", they significantly overstate the number of instruction fetches —
"in most implementations, 2 to 4 instructions would be loaded each time."
This ablation regenerates the same program with and without interface
memory and measures the inflation in fetch count and the effect on the
apparent reference mix.
"""

from common import bench_length, run_once, save_result

from repro.trace import AccessKind, characterize
from repro.workloads import catalog
from repro.workloads.generator import generate_trace


def test_ablation_interface_memory(benchmark):
    def experiment():
        base = catalog.get("FGO1")  # IBM 370: 8-byte interface
        length = bench_length() or 250_000
        without = generate_trace(base.evolve(interface_memory=False), length)
        with_memory = generate_trace(base.evolve(interface_memory=True), length)
        return characterize(without), characterize(with_memory), without, with_memory

    row_without, row_with, trace_without, trace_with = run_once(benchmark, experiment)

    lines = [
        "Ablation: instruction-interface memory (FGO1, 8-byte interface)",
        f"  without memory: ifetch share {row_without.fraction_ifetch:.3f}, "
        f"branch {row_without.branch_fraction:.3f}",
        f"  with memory   : ifetch share {row_with.fraction_ifetch:.3f}, "
        f"branch {row_with.branch_fraction:.3f}",
    ]

    # The generator paces data refs to keep the *mix* on target, so the
    # inflation shows as instructions-per-ifetch: with a remembering
    # 8-byte interface, consecutive ifetches never repeat a word, while
    # without memory every instruction refetches.
    import numpy as np

    def repeated_word_fraction(trace):
        mask = trace.kinds == int(AccessKind.IFETCH)
        addresses = trace.addresses[mask]
        if len(addresses) < 2:
            return 0.0
        return float(np.mean(np.diff(addresses) == 0))

    repeat_without = repeated_word_fraction(trace_without)
    repeat_with = repeated_word_fraction(trace_with)
    lines.append(f"  repeated-word ifetch fraction: without={repeat_without:.3f} "
                 f"with={repeat_with:.3f}")
    text = "\n".join(lines)
    save_result("ablation_interface", text)
    print()
    print(text)

    # No-memory interfaces refetch the same 8-byte word for sequential
    # 4-byte instructions; a remembering interface never does.
    assert repeat_without > 0.2
    assert repeat_with == 0.0
