"""Section 4.1 validations: [Clar83]'s VAX measurements and [Alpe83]'s
Z80000 projections.

* Clark measured a 10.3% overall read miss ratio on the 8K/8-byte-line
  VAX 11/780; the paper's 8K target (16-byte lines), doubled to adjust the
  line size, "is not out of line".
* [Alpe83] projected 0.88 hit for the Z80000's 256-byte sector cache with
  16-byte fetches; the paper predicts ~0.70 for a real 32-bit workload.
  The benchmark reproduces the gap: the projection roughly holds on the
  Z8000-style toys and fails on the design workload.
"""

from common import bench_length, run_once, save_result

from repro.analysis import (
    ALPERT83_Z80000,
    clark_comparison,
    design_target_estimate,
    z80000_comparison,
)


def test_validation(benchmark):
    def experiment():
        targets = design_target_estimate(length=bench_length())
        clark = clark_comparison(targets)
        z80000 = z80000_comparison(length=bench_length())
        return clark, z80000

    clark, z80000 = run_once(benchmark, experiment)

    lines = ["[Clar83] comparison (miss ratios):"]
    for key, value in clark.items():
        lines.append(f"  {key:32s} {value:.4f}")
    lines.append("")
    lines.append("[Alpe83] Z80000 256B sector cache (hit ratios):")
    for subblock, row in z80000.items():
        lines.append(
            f"  {subblock:2d}B sub-blocks: projected={row['alpert_hit']:.3f} "
            f"z8000-workload={row['z8000_hit']:.3f} "
            f"32-bit-workload={row['design_hit']:.3f}"
        )
    text = "\n".join(lines)
    save_result("validation", text)
    print()
    print(text)

    # Clark: the adjusted estimate is "not out of line" — same ballpark
    # (within ~2.5x either way) as the measured 10.3%.
    ratio = clark["ours_8k_adjusted_to_8B_lines"] / clark["clark_8k_overall_read"]
    assert 0.4 < ratio < 2.5

    # Z80000: hit ratio grows with sub-block size on every workload set.
    for key in ("z8000_hit", "design_hit"):
        values = [z80000[s][key] for s in sorted(z80000)]
        assert values == sorted(values)

    # The paper's punchline: on a 32-bit workload, the 16-byte-fetch hit
    # ratio falls well short of the projected 0.88 — closer to the
    # paper's ~0.70 prediction.
    row16 = z80000[16]
    assert row16["design_hit"] < 0.82
    assert row16["design_hit"] < row16["z8000_hit"]

    projected = ALPERT83_Z80000["projected_hit_ratios"][16]
    assert projected - row16["design_hit"] > 0.06
