"""Extension: the write-policy study (Section 3.3's trade-off, measured).

Copy-back vs write-through vs write-through-with-combining on one cache
configuration across program classes.  The assertions encode the section's
reasoning: stores revisit lines (store locality >> 1), so copy-back turns
many stores into few write-backs; plain write-through pays per store;
combining recovers part of the gap.
"""

from common import bench_length, run_once, save_result

from repro.analysis import write_policy_study


def test_ext_writepolicy_study(benchmark):
    study = run_once(benchmark, lambda: write_policy_study(length=bench_length()))

    text = study.render()
    lines = [text, "", "stores per written line (store locality):"]
    for workload, value in study.writes_per_written_line.items():
        lines.append(f"  {workload:8s} {value:7.1f}")
    output = "\n".join(lines)
    save_result("ext_writepolicy_study", output)
    print()
    print(output)

    for workload in study.traffic_bytes:
        # Store locality makes copy-back's write side cheap.
        assert study.writes_per_written_line[workload] > 3.0
        transactions = study.write_transactions[workload]
        assert transactions["copy-back"] < transactions["write-through"]
        assert (transactions["write-through+combine"]
                <= transactions["write-through"])

    # Write-through moves more bytes than copy-back for the write-heavy
    # business workload (CGO1), the case Section 3.3 is about.
    assert study.traffic_ratio("CGO1", "write-through") > 1.1
